"""Population-scale cohort studies: is push worth it for *your* clients?

The paper's verdict (§7) is that push's benefit depends on the site,
the strategy, and above all the network.  This package operationalizes
that: it replays whole client *populations* — weighted mixtures of 3G,
LTE, noisy DSL, and fiber clients on a spread of devices — against
site cohorts, streams every load through bounded accumulators, and
reports per-cohort quantiles plus a deploy/don't-deploy push verdict.

Entry points: :func:`run_population` (library),
``python -m repro population`` (CLI).
"""

from .cohorts import QUICK_PROFILE, Cohort, default_cohorts, quick_cohorts
from .driver import PopulationConfig, run_population
from .profiles import (
    DEFAULT_DEVICES,
    GLOBAL_MIX,
    MIXES,
    MOBILE_MIX,
    WIRED_MIX,
    DeviceClass,
    PopulationSampler,
    population_sampler,
)
from .report import (
    REPORT_QUANTILES,
    ArmAccumulator,
    CohortAccumulator,
    PopulationResult,
    render_population,
)

__all__ = [
    "ArmAccumulator",
    "Cohort",
    "CohortAccumulator",
    "DEFAULT_DEVICES",
    "DeviceClass",
    "GLOBAL_MIX",
    "MIXES",
    "MOBILE_MIX",
    "PopulationConfig",
    "PopulationResult",
    "PopulationSampler",
    "QUICK_PROFILE",
    "REPORT_QUANTILES",
    "WIRED_MIX",
    "default_cohorts",
    "population_sampler",
    "quick_cohorts",
    "render_population",
    "run_population",
]
