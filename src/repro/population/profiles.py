"""Client-profile sampling for population-scale studies.

The paper measures push on one emulated DSL link (§4.1) and briefly on
a lossy variant (§5.6).  A deployment decision, though, is made against
a *population*: the CDN's clients arrive over 3G, LTE, DSL with a noisy
last mile, and fiber, on devices from low-end phones to desktops, each
with its own RTT/bandwidth/loss draw.  This module models that client
mix as a :class:`PopulationSampler` — a ``ConditionSampler`` that first
draws an access network from a weighted mixture over the named
:data:`repro.netsim.conditions.PROFILES`, then perturbs its RTT and
bandwidth log-normally (no two LTE clients see the same link), and
finally applies a device class.

Device slowness is proxied by extra per-request processing delay
(``server_delay_ms``): the simulator has no client CPU model, but the
end-to-end effect of a slow device — every request/response exchange
takes a few extra milliseconds — is exactly what that knob adds, and it
is already part of every deterministic replay.

Samplers are plain picklable objects, so population cells fan out to
warm workers like any other cell, and they are stateless between
``sample`` calls: a load's draw depends only on the RNG handed in,
which the seed derivation pins to the load's identity (see
:func:`repro.experiments.seeds.population_seed_base`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Sequence, Tuple

from ..errors import ConfigError
from ..netsim.conditions import ConditionSampler, NetworkConditions, profile


@dataclass(frozen=True)
class DeviceClass:
    """A device tier: its mixture weight and per-request overhead."""

    name: str
    weight: float
    processing_delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ConfigError(f"device weight must be >= 0, got {self.weight}")
        if self.processing_delay_ms < 0:
            raise ConfigError(
                f"processing_delay_ms must be >= 0, got {self.processing_delay_ms}"
            )


#: A 2018-flavoured device mix: half mid-range, a long low-end tail.
DEFAULT_DEVICES: Tuple[DeviceClass, ...] = (
    DeviceClass("low_end", weight=0.30, processing_delay_ms=8.0),
    DeviceClass("mid_range", weight=0.50, processing_delay_ms=3.0),
    DeviceClass("high_end", weight=0.20, processing_delay_ms=0.0),
)


class PopulationSampler(ConditionSampler):
    """Weighted mixture of named network profiles with per-client jitter.

    ``mix`` maps profile names (keys of :data:`~repro.netsim.conditions.
    PROFILES`) to non-negative weights; weights are normalized at
    construction.  Each ``sample``:

    1. draws an access profile by weight,
    2. scales its RTT by ``lognormvariate(0, rtt_sigma)`` and divides
       both link rates by independent ``lognormvariate(0,
       bandwidth_sigma)`` draws (slower clients are more likely than
       faster ones, matching measured last-mile distributions),
    3. draws a device class and adds its processing delay.

    The draw order is part of the determinism contract — reordering it
    changes every population study's numbers.
    """

    def __init__(
        self,
        mix: Sequence[Tuple[str, float]],
        rtt_sigma: float = 0.25,
        bandwidth_sigma: float = 0.30,
        devices: Sequence[DeviceClass] = DEFAULT_DEVICES,
    ):
        if not mix:
            raise ConfigError("population mix must name at least one profile")
        total = sum(weight for _, weight in mix)
        if total <= 0:
            raise ConfigError("population mix weights must sum to > 0")
        #: Normalized ``(name, conditions, weight)`` in declaration order.
        self.components = tuple(
            (name, profile(name), weight / total) for name, weight in mix
        )
        if rtt_sigma < 0 or bandwidth_sigma < 0:
            raise ConfigError("sigmas must be >= 0")
        self.rtt_sigma = rtt_sigma
        self.bandwidth_sigma = bandwidth_sigma
        device_total = sum(device.weight for device in devices)
        if not devices or device_total <= 0:
            raise ConfigError("device mix must have positive total weight")
        self.devices = tuple(devices)
        self._device_total = device_total

    # ------------------------------------------------------------------
    def _pick_profile(self, rng: random.Random) -> NetworkConditions:
        roll = rng.random()
        cumulative = 0.0
        for _, conditions, weight in self.components:
            cumulative += weight
            if roll < cumulative:
                return conditions
        return self.components[-1][1]

    def _pick_device(self, rng: random.Random) -> DeviceClass:
        roll = rng.random() * self._device_total
        cumulative = 0.0
        for device in self.devices:
            cumulative += device.weight
            if roll < cumulative:
                return device
        return self.devices[-1]

    def sample(self, rng: random.Random) -> NetworkConditions:
        base = self._pick_profile(rng)
        rtt = base.rtt_ms * rng.lognormvariate(0.0, self.rtt_sigma)
        down = base.downlink_bytes_per_ms / rng.lognormvariate(0.0, self.bandwidth_sigma)
        up = base.uplink_bytes_per_ms / rng.lognormvariate(0.0, self.bandwidth_sigma)
        device = self._pick_device(rng)
        return replace(
            base,
            rtt_ms=rtt,
            downlink_bytes_per_ms=down,
            uplink_bytes_per_ms=up,
            server_delay_ms=base.server_delay_ms + device.processing_delay_ms,
        )

    def describe(self) -> str:
        parts = ", ".join(
            f"{name}:{weight:.0%}" for name, _, weight in self.components
        )
        return f"mix({parts})"


#: A global 2018-ish client mix: mobile-majority with a fiber tail.
GLOBAL_MIX: Tuple[Tuple[str, float], ...] = (
    ("cellular_3g", 0.25),
    ("cellular_lte", 0.35),
    ("lossy_dsl", 0.25),
    ("fiber", 0.15),
)

#: Mobile-only clients (an app CDN's population).
MOBILE_MIX: Tuple[Tuple[str, float], ...] = (
    ("cellular_3g", 0.40),
    ("cellular_lte", 0.60),
)

#: Wired-only clients (a desktop-heavy property).
WIRED_MIX: Tuple[Tuple[str, float], ...] = (
    ("lossy_dsl", 0.45),
    ("cable", 0.30),
    ("fiber", 0.25),
)

#: Named mixes selectable from configs and the CLI.
MIXES = {
    "global": GLOBAL_MIX,
    "mobile": MOBILE_MIX,
    "wired": WIRED_MIX,
}


def population_sampler(mix_name: str, **kwargs) -> PopulationSampler:
    """Build a sampler from a named mix; raises ``ConfigError``."""
    try:
        mix = MIXES[mix_name]
    except KeyError:
        raise ConfigError(
            f"unknown population mix {mix_name!r} "
            f"(available: {', '.join(sorted(MIXES))})"
        ) from None
    return PopulationSampler(mix, **kwargs)
