"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so
callers can catch package-level failures with a single ``except`` clause
while still being able to distinguish protocol errors from simulation or
configuration mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that
    was already stopped, or re-entrant ``run()`` calls.
    """


class SnapshotError(SimulationError):
    """A simulation world could not be snapshotted or forked.

    Examples: snapshotting a simulator from inside its own run loop, or
    forking a world that contains an object the fork copier cannot
    reconstruct (see :mod:`repro.sim.snapshot`).
    """


class NetworkError(ReproError):
    """A network-substrate invariant was violated.

    Examples: writing to a closed endpoint or connecting to a host that
    is not part of the topology.
    """


class ProtocolError(ReproError):
    """An HTTP/2 protocol violation (connection error in RFC 7540 terms)."""

    def __init__(self, message: str, error_code: int = 1):
        super().__init__(message)
        #: RFC 7540 §7 error code associated with this violation.
        self.error_code = error_code


class StreamError(ReproError):
    """An HTTP/2 stream-level error (stream error in RFC 7540 terms)."""

    def __init__(self, message: str, stream_id: int, error_code: int = 1):
        super().__init__(message)
        self.stream_id = stream_id
        self.error_code = error_code


class HpackError(ProtocolError):
    """HPACK (RFC 7541) decoding failure; always a COMPRESSION_ERROR."""

    def __init__(self, message: str):
        # 0x9 == COMPRESSION_ERROR
        super().__init__(message, error_code=0x9)


class FlowControlError(ProtocolError):
    """A flow-control window was violated or overflowed."""

    def __init__(self, message: str):
        # 0x3 == FLOW_CONTROL_ERROR
        super().__init__(message, error_code=0x3)


class ReplayError(ReproError):
    """Record/replay failures: unknown request, malformed record DB."""


class StrategyError(ReproError):
    """A push strategy was configured inconsistently with the site."""


class BrowserError(ReproError):
    """The browser model reached an inconsistent internal state."""


class ConfigError(ReproError):
    """Invalid experiment or testbed configuration."""


class ExperimentError(ReproError):
    """An experiment cell produced inconsistent or unusable results.

    Examples: per-run pushed-byte counts that disagree within one cell,
    or a cached record that fails integrity checks.
    """


class ExecutorError(ExperimentError):
    """Cells could not be executed after exhausting every recovery path.

    Raised by the warm worker pool when a cell's work units failed
    permanently — its worker process crashed more times than the retry
    budget allows, or the cell raised inside the worker.  Cells that
    completed before the failure keep their results (and cache entries);
    ``failed_cells`` lists ``(cell_index, label, reason)`` triples for
    the ones that did not.
    """

    def __init__(self, message: str, failed_cells=()):
        super().__init__(message)
        #: ``(index into the submitted batch, cell label, reason)``.
        self.failed_cells = list(failed_cells)
