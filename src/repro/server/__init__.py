"""HTTP/2 origin servers for the replay testbed."""

from .h2server import ReplayServer, ServerFarm
from .scheduler import DefaultScheduler, InterleavingScheduler

__all__ = [
    "DefaultScheduler",
    "InterleavingScheduler",
    "ReplayServer",
    "ServerFarm",
]
