"""h2o-style stream schedulers.

:class:`DefaultScheduler` is the unmodified h2o discipline: strict
adherence to the RFC 7540 priority tree, where a pushed stream is a
child of its parent and therefore only sends when the parent is idle,
blocked, or finished (Fig. 5a).

:class:`InterleavingScheduler` is the paper's modification (§5): the
parent (HTML) stream is *stopped* after a configured byte offset, the
critical pushed streams are transmitted in order, and only then does
the HTML resume.  Non-critical pushes stay children of the parent and
drain afterwards as usual.
"""

from __future__ import annotations

from typing import List, Optional

from ..h2.connection import DataScheduler, H2Connection


class DefaultScheduler(DataScheduler):
    """Alias of the connection's built-in priority-tree scheduler."""

    name = "default"


class InterleavingScheduler(DataScheduler):
    """Pause the parent stream at ``offset``; send critical pushes; resume."""

    name = "interleaving"

    def __init__(self, parent_stream_id: int, offset: int, critical_stream_ids: List[int]):
        if offset < 0:
            raise ValueError("interleave offset must be non-negative")
        self.parent_stream_id = parent_stream_id
        self.offset = offset
        self.critical_order = list(critical_stream_ids)
        self._critical_pending = set(critical_stream_ids)
        self._activated = False
        self._finished = not critical_stream_ids

    def activate(self, conn: H2Connection) -> None:
        """Install the pause point on the parent stream."""
        parent = conn.streams.get(self.parent_stream_id)
        if parent is None:
            raise ValueError(f"unknown parent stream {self.parent_stream_id}")
        if not self._finished:
            parent.pause_at = self.offset
        self._activated = True

    # ------------------------------------------------------------------
    def select(self, conn: H2Connection, ready: List[int]) -> Optional[int]:
        if not self._finished:
            ready_set = set(ready)
            # Phase 1: the HTML head, up to the pause offset.
            if self.parent_stream_id in ready_set:
                return self.parent_stream_id
            # Phase 2: critical pushes, in strategy order.
            for stream_id in self.critical_order:
                if stream_id in ready_set and stream_id in self._critical_pending:
                    return stream_id
        # Phase 3: normal priority-tree operation (HTML rest, other pushes).
        return conn.priority_tree.select(ready)

    def on_data_sent(self, conn: H2Connection, stream_id: int, size: int, end: bool) -> None:
        conn.priority_tree.charge(stream_id, size)
        if self._finished or not end:
            return
        if stream_id in self._critical_pending:
            self._critical_pending.discard(stream_id)
            if not self._critical_pending:
                self._resume_parent(conn)

    def on_stream_reset(self, conn: H2Connection, stream_id: int) -> None:
        """A cancelled critical push must not leave the HTML paused."""
        if self._finished:
            return
        if stream_id == self.parent_stream_id:
            self._finished = True
            return
        if stream_id in self._critical_pending:
            self._critical_pending.discard(stream_id)
            if not self._critical_pending:
                self._resume_parent(conn)

    def _resume_parent(self, conn: H2Connection) -> None:
        self._finished = True
        parent = conn.streams.get(self.parent_stream_id)
        if parent is not None:
            parent.pause_at = None
