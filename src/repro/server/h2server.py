"""The replay web server (h2o + FastCGI record module equivalent).

One :class:`ReplayServer` instance stands in for one origin server in
the testbed topology (one per recorded IP, as Mahimahi spawns them).
It answers requests from the record database, and — on the base
document request — consults the configured push strategy, issues
PUSH_PROMISEs, and installs the interleaving scheduler when the plan
asks for it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..browser.priorities import weight_for
from ..h2.connection import H2Connection
from ..h2.constants import ErrorCode
from ..h2.frames import PriorityData
from ..html.resources import ResourceType, split_url
from ..netsim.tcp import TcpConnection
from ..replay.certs import Certificate
from ..replay.matcher import RequestMatcher
from ..replay.recorddb import ResponseRecord
from ..sim import Simulator
from ..strategies.base import PushPlan, PushStrategy

Header = Tuple[str, str]


class ReplayServer:
    """An HTTP/2 origin server serving recorded responses."""

    def __init__(
        self,
        sim: Simulator,
        ip: str,
        matcher: RequestMatcher,
        certificate: Certificate,
        strategy: Optional[PushStrategy] = None,
        server_delay_ms: float = 0.0,
        chunk_size: int = 1_400,
        tracer=None,
    ):
        # h2o caps DATA frames near the MSS ("latency-optimized" write
        # path) so receivers can process bytes as segments arrive; a
        # 16 KB frame would stall the client until its last segment.
        self.sim = sim
        #: Optional event tracer, handed to every accepted connection.
        self.tracer = tracer
        self.ip = ip
        self.matcher = matcher
        self.certificate = certificate
        self.strategy = strategy
        self.server_delay_ms = server_delay_ms
        self.chunk_size = chunk_size
        self.connections: List[H2Connection] = []
        #: Armed by the fork-point testbed (a
        #: :class:`repro.replay.testbed.ForkGate`); ``None`` on every
        #: straight run and on every fork.
        self.fork_gate = None
        #: Wire-level accounting for the paper's "pushed KB" numbers.
        self.pushed_bytes = 0
        self.push_streams_opened = 0
        self.pushes_skipped_by_digest = 0
        self.requests_served = 0

    # ------------------------------------------------------------------
    def accept(self, tcp: TcpConnection) -> H2Connection:
        """Attach an H2 server endpoint to an incoming connection.

        The framing adapter follows the transport: H2-over-TCP for the
        paper's stack, the H3-flavored stream mapping for QUIC.
        """
        if getattr(tcp, "transport", "tcp") == "quic":
            from ..mechanisms.h2quic import H2OverQuicConnection

            conn: H2Connection = H2OverQuicConnection(
                tcp.server, "server", chunk_size=self.chunk_size, tracer=self.tracer
            )
        else:
            conn = H2Connection(
                tcp.server, "server", chunk_size=self.chunk_size, tracer=self.tracer
            )
        conn.on_request = lambda sid, headers, prio: self._on_request(conn, sid, headers)
        self.connections.append(conn)
        return conn

    def is_authoritative(self, url: str) -> bool:
        """RFC 7540 §8.2: may this server push ``url``?"""
        domain = split_url(url)[0]
        return self.certificate.covers(domain)

    # ------------------------------------------------------------------
    def _on_request(self, conn: H2Connection, stream_id: int, headers: List[Header]) -> None:
        gate = self.fork_gate
        if (
            gate is not None
            and not gate.fired
            and _request_url(headers) == gate.main_url
        ):
            # Fork point: everything before this event is
            # strategy-invariant; everything from here on may depend on
            # the strategy.  Only armed on discovery-pass scout worlds.
            gate.trip(self)
            return
        url = _request_url(headers)
        record = self.matcher.match(url)
        digest = self._parse_cache_digest(headers)
        plan = None
        if (
            record is not None
            and record.rtype == ResourceType.HTML
            and self.strategy is not None
        ):
            plan = self.strategy.plan(url, self.matcher._db, self.is_authoritative)
            if plan.early_hint_urls:
                # RFC 8297: the interim 103 leaves *before* the
                # response-generation delay — that head start over
                # final-response link headers is the whole mechanism.
                conn.respond_informational(
                    stream_id,
                    [(":status", "103")]
                    + [("link", f"<{u}>; rel=preload") for u in plan.early_hint_urls],
                )
                if self.tracer is not None:
                    self.tracer.early_hints_sent(
                        conn._trace_name, stream_id, len(plan.early_hint_urls)
                    )
        if self.server_delay_ms > 0:
            self.sim.schedule(
                self.server_delay_ms,
                lambda: self._serve(conn, stream_id, url, record, digest, plan),
            )
        else:
            self._serve(conn, stream_id, url, record, digest, plan)

    @staticmethod
    def _parse_cache_digest(headers: List[Header]):
        """Decode a cache-digest request header, if the client sent one
        (draft-ietf-httpbis-cache-digest, the paper's §2.1 citation)."""
        from ..h2.cache_digest import CacheDigest

        for name, value in headers:
            if name.lower() == "cache-digest":
                try:
                    return CacheDigest.from_header_value(value)
                except Exception:
                    return None
        return None

    def _serve(
        self,
        conn: H2Connection,
        stream_id: int,
        url: str,
        record: Optional[ResponseRecord],
        digest=None,
        plan: Optional[PushPlan] = None,
    ) -> None:
        self.requests_served += 1
        if record is None:
            conn.respond(stream_id, [(":status", "404")], end_stream=True)
            return
        is_document = record.rtype == ResourceType.HTML and self.strategy is not None
        if is_document and plan is None:
            plan = self.strategy.plan(url, self.matcher._db, self.is_authoritative)
        response_headers = record.response_headers()
        if plan is not None and plan.hint_urls:
            # Server-aided discovery (MetaPush [20] / Vroom [32]): the
            # client learns what to fetch from link headers — including
            # resources beyond this server's push authority.
            response_headers += [
                ("link", f"<{hint}>; rel=preload") for hint in plan.hint_urls
            ]
        conn.respond(stream_id, response_headers)
        should_push = is_document and conn.remote_settings.enable_push
        promised: Dict[str, int] = {}
        if should_push:
            if digest is not None:
                skipped = [u for u in plan.urls if digest.contains(u)]
                self.pushes_skipped_by_digest += len(skipped)
                plan.urls = [u for u in plan.urls if u not in skipped]
                plan.critical_urls = [
                    u for u in plan.critical_urls if u not in skipped
                ]
            promised = self._promise_pushes(conn, stream_id, plan)
        # The parent body must be queued before any pushed body so the
        # priority tree (push = child of parent) governs DATA order.
        conn.send_body(stream_id, record.body, end_stream=True)
        if promised:
            self._send_pushed_bodies(conn, promised)

    # ------------------------------------------------------------------
    def _promise_pushes(
        self, conn: H2Connection, parent_id: int, plan: PushPlan
    ) -> Dict[str, int]:
        """Send PUSH_PROMISEs and install the interleaving scheduler."""
        if not plan.urls:
            return {}
        promised: Dict[str, int] = {}
        previous_push: Optional[int] = None
        for push_url in plan.urls:
            if not self.is_authoritative(push_url):
                continue
            record = self.matcher.match(push_url)
            if record is None:
                continue
            domain, path = split_url(push_url)
            request_headers = [
                (":method", "GET"),
                (":scheme", "https"),
                (":authority", domain),
                (":path", path),
            ]
            # The strategy's push order is enforced on the wire: pushed
            # streams form a sequential dependency chain below the
            # parent (the testbed "enables to specify push strategies",
            # §4.1 — order included), weighted by resource class.
            promised_id = conn.push(
                parent_id,
                request_headers,
                depends_on=previous_push if previous_push is not None else parent_id,
                weight=weight_for(record.rtype),
            )
            previous_push = promised_id
            promised[push_url] = promised_id
            self.push_streams_opened += 1
        if plan.interleaving:
            critical_ids = [
                promised[url] for url in plan.critical_urls if url in promised
            ]
            if critical_ids:
                from .scheduler import InterleavingScheduler

                scheduler = InterleavingScheduler(
                    parent_stream_id=parent_id,
                    offset=plan.interleave_offset,
                    critical_stream_ids=critical_ids,
                )
                conn.scheduler = scheduler
                scheduler.activate(conn)
        return promised

    def _send_pushed_bodies(self, conn: H2Connection, promised: Dict[str, int]) -> None:
        """Queue pushed response headers and bodies (after the parent's)."""
        for push_url, promised_id in promised.items():
            if conn.streams[promised_id].closed:
                continue  # the client cancelled the push already
            record = self.matcher.match(push_url)
            conn.respond(promised_id, record.response_headers())
            conn.send_body(promised_id, record.body, end_stream=True)
            self.pushed_bytes += record.size


def _request_url(headers: List[Header]) -> str:
    pseudo = dict(headers)
    scheme = pseudo.get(":scheme", "https")
    authority = pseudo.get(":authority", "")
    path = pseudo.get(":path", "/")
    return f"{scheme}://{authority}{path}"


class ServerFarm:
    """All origin servers of a testbed run, keyed by IP."""

    def __init__(self):
        self._servers: Dict[str, ReplayServer] = {}

    def add(self, server: ReplayServer) -> None:
        self._servers[server.ip] = server

    def get(self, ip: str) -> ReplayServer:
        return self._servers[ip]

    def __contains__(self, ip: str) -> bool:
        return ip in self._servers

    def __iter__(self):
        return iter(self._servers.values())

    @property
    def total_pushed_bytes(self) -> int:
        # H1 servers have no push machinery at all.
        return sum(
            getattr(server, "pushed_bytes", 0) for server in self._servers.values()
        )
