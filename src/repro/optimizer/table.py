"""The policy-table artifact: site-class × condition → best policy.

The optimizer's output is a deployable JSON document, content-addressed
the same way the golden records are: the ``table_sha`` field is the
SHA-256 of the canonical (sorted-keys) JSON of the meta block and the
entry list, so two optimizer runs agree iff their tables are
bit-identical — the CI cross-core job diffs exactly this.

Each entry records the winning :class:`~repro.optimizer.space.
PushPolicy` for one site × condition with its measured effect — paired
mean ΔSpeedIndex with CI half-width, Δp50 PLT — plus the oracle gap
against the best hand-crafted §5 deployment.  ``site_class`` groups
sites structurally so a CDN could apply a learned policy to unseen
sites of the same shape; :meth:`PolicyTable.best_for_class` aggregates
per class.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from .space import PushPolicy

#: Bump when the JSON layout changes incompatibly.
TABLE_FORMAT = 1


@dataclass
class PolicyEntry:
    """The learned best policy for one site × condition."""

    site: str
    site_class: str
    condition: str
    policy: PushPolicy
    #: Candidate name the policy came from (``s5/...``, ``nbr.../...``,
    #: ``rand...``) — provenance, e.g. "was a hand-crafted anchor best?"
    source: str
    runs: int
    baseline_median_si_ms: float
    #: Paired mean ΔSpeedIndex vs the ``none`` baseline (%; negative =
    #: faster) with its CI half-width.
    delta_si_pct: float
    ci_half_width: float
    #: Δ of the median (p50) page load time vs baseline (%).
    delta_p50_plt_pct: float
    pushed_bytes: int
    #: Learned minus best hand-crafted ΔSI (≤ 0 means the learned
    #: policy is at least as good as every §5 deployment).
    oracle_gap_pct: float

    def to_json(self) -> dict:
        return {
            "site": self.site,
            "site_class": self.site_class,
            "condition": self.condition,
            "policy": self.policy.to_json(),
            "policy_fingerprint": self.policy.fingerprint(),
            "source": self.source,
            "runs": self.runs,
            "baseline_median_si_ms": self.baseline_median_si_ms,
            "delta_si_pct": self.delta_si_pct,
            "ci_half_width": self.ci_half_width,
            "delta_p50_plt_pct": self.delta_p50_plt_pct,
            "pushed_bytes": self.pushed_bytes,
            "oracle_gap_pct": self.oracle_gap_pct,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "PolicyEntry":
        return cls(
            site=payload["site"],
            site_class=payload["site_class"],
            condition=payload["condition"],
            policy=PushPolicy.from_json(payload["policy"]),
            source=payload["source"],
            runs=payload["runs"],
            baseline_median_si_ms=payload["baseline_median_si_ms"],
            delta_si_pct=payload["delta_si_pct"],
            ci_half_width=payload["ci_half_width"],
            delta_p50_plt_pct=payload["delta_p50_plt_pct"],
            pushed_bytes=payload["pushed_bytes"],
            oracle_gap_pct=payload["oracle_gap_pct"],
        )


@dataclass
class PolicyTable:
    """All learned policies of one optimizer run."""

    #: Reproducibility context: seed, rung schedule, allocator, corpus.
    meta: Dict[str, object] = field(default_factory=dict)
    entries: List[PolicyEntry] = field(default_factory=list)

    def add(self, entry: PolicyEntry) -> None:
        if self.lookup(entry.site, entry.condition) is not None:
            raise ConfigError(
                f"duplicate table entry for {entry.site} × {entry.condition}"
            )
        self.entries.append(entry)
        self.entries.sort(key=lambda e: (e.site, e.condition))

    def lookup(self, site: str, condition: str) -> Optional[PolicyEntry]:
        for entry in self.entries:
            if entry.site == site and entry.condition == condition:
                return entry
        return None

    def best_for_class(
        self, site_class: str, condition: str
    ) -> Optional[PolicyEntry]:
        """The strongest measured entry of a structural class — what a
        CDN would deploy on an unseen site of that shape."""
        matching = [
            e
            for e in self.entries
            if e.site_class == site_class and e.condition == condition
        ]
        if not matching:
            return None
        return min(matching, key=lambda e: (e.delta_si_pct, e.site))

    # ------------------------------------------------------------------
    def _payload(self) -> dict:
        return {
            "format": TABLE_FORMAT,
            "meta": self.meta,
            "entries": [entry.to_json() for entry in self.entries],
        }

    def sha(self) -> str:
        """Content address over the canonical JSON (golden-style)."""
        canonical = json.dumps(self._payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def to_json(self) -> dict:
        payload = self._payload()
        payload["table_sha"] = self.sha()
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "PolicyTable":
        if payload.get("format") != TABLE_FORMAT:
            raise ConfigError(
                f"unsupported policy-table format {payload.get('format')!r}"
            )
        table = cls(
            meta=dict(payload.get("meta", {})),
            entries=[PolicyEntry.from_json(e) for e in payload.get("entries", [])],
        )
        recorded = payload.get("table_sha")
        if recorded is not None and recorded != table.sha():
            raise ConfigError(
                "policy table content does not match its table_sha "
                f"(recorded {recorded[:12]}, computed {table.sha()[:12]})"
            )
        return table

    # ------------------------------------------------------------------
    def save(self, path) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    @classmethod
    def load(cls, path) -> "PolicyTable":
        return cls.from_json(json.loads(Path(path).read_text(encoding="utf-8")))
