"""Engine-backed arm evaluators for the racer.

Two cell geometries, one :class:`~repro.optimizer.racer.ArmEvaluator`
protocol:

:class:`GridRunEvaluator` (the optimizer's mode)
    Every (arm, run index) is its own single-run cell whose seed base
    is :func:`repro.experiments.seeds.candidate_seed` — depending on
    (site, run) only, never on the policy.  Consequences, in order of
    importance: all arms of one run are CRN-paired with the baseline;
    promoting a survivor to more runs only *adds* cells (earlier runs
    stay cache-addressed under their existing keys, whatever the rung
    geometry); and the K sibling candidates of one run share a single
    :class:`~repro.experiments.runner.PrefixCache` lease, so they fork
    one captured replay prefix instead of replaying K handshakes.  To
    keep that sharing effective, cells are scheduled **run-major**
    with arms grouped by (site variant, push-enabled) — the prefix
    cache validates by built-site identity, so interleaving variants
    would thrash it.

:class:`GridCellEvaluator` (the A/B lab mode)
    One multi-run cell per arm at a fixed seed base — exactly the grid
    the §6 ``StrategySelector`` lab phase has always built, byte-
    identical cache keys included.  Meant for single-rung races; a
    rung promotion re-runs the whole cell (the engine key embeds
    ``runs``), which is the historical cost model of that phase.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..experiments.engine import ExperimentEngine, Grid
from ..experiments.engine.fingerprint import fingerprint
from ..experiments.runner import CellResult, prefix_cache_stats
from ..experiments.seeds import candidate_seed
from ..html.spec import WebsiteSpec
from ..netsim.conditions import ConditionSampler, FixedConditions, NetworkConditions
from ..strategies.base import PushStrategy
from .racer import ArmEvaluator, RunPoint

#: An arm's deployment: the spec to serve and the strategy to run.
Arm = Tuple[WebsiteSpec, Optional[PushStrategy]]


class GridRunEvaluator(ArmEvaluator):
    """Run-granular CRN-paired cells (see module docstring)."""

    def __init__(
        self,
        engine: ExperimentEngine,
        site: str,
        arms: Dict[str, Arm],
        conditions: Optional[NetworkConditions] = None,
        grid_name: str = "optimize",
        reduce: str = "summary",
    ):
        self.engine = engine
        self.site = site
        self.arms = dict(arms)
        self.sampler: Optional[ConditionSampler] = (
            FixedConditions(conditions) if conditions is not None else None
        )
        self.grid_name = grid_name
        self.reduce = reduce
        self._points: Dict[str, List[RunPoint]] = {name: [] for name in arms}
        self._pushed: Dict[str, int] = {}
        self._evaluations = 0
        self.prefix_hits = 0
        self.prefix_misses = 0
        # Policy fingerprints (per-arm identity handed to candidate_seed)
        # and the prefix-sharing group: arms with the same built site and
        # client push profile can lease one prefix per run.
        self._fps = {
            name: fingerprint({"spec": spec, "strategy": strategy})
            for name, (spec, strategy) in self.arms.items()
        }
        groups: Dict[tuple, int] = {}
        self._group: Dict[str, int] = {}
        for name, (spec, strategy) in self.arms.items():
            push_enabled = strategy is None or strategy.client_push_enabled
            key = (fingerprint(spec), push_enabled)
            self._group[name] = groups.setdefault(key, len(groups))

    # ------------------------------------------------------------------
    def ensure(self, requests: Dict[str, int]) -> None:
        unknown = set(requests) - set(self.arms)
        if unknown:
            raise KeyError(f"unknown arms: {sorted(unknown)}")
        max_runs = max(requests.values(), default=0)
        ordered = sorted(requests, key=lambda name: self._group[name])
        grid = Grid(name=self.grid_name)
        slots: List[Tuple[str, int]] = []
        for run in range(max_runs):
            for name in ordered:
                if run >= requests[name] or run < len(self._points[name]):
                    continue
                spec, strategy = self.arms[name]
                grid.add(
                    spec,
                    strategy,
                    runs=1,
                    seed_base=candidate_seed(self.site, self._fps[name], run),
                    conditions=self.sampler,
                    label=f"{self.site}/{name}/r{run}",
                    reduce=self.reduce,
                )
                slots.append((name, run))
        if not slots:
            return
        before = prefix_cache_stats()
        results = self.engine.run(grid)
        after = prefix_cache_stats()
        self.prefix_hits += after["hits"] - before["hits"]
        self.prefix_misses += after["misses"] - before["misses"]
        self._evaluations += len(slots)
        for (name, run), result in zip(slots, results):
            points = self._points[name]
            if run != len(points):  # pragma: no cover - scheduling bug guard
                raise AssertionError(
                    f"{name}: run {run} arrived with {len(points)} points"
                )
            points.append(
                RunPoint(si_ms=result.si_values[0], plt_ms=result.plt_values[0])
            )
            self._pushed.setdefault(name, result.pushed_bytes)

    def points(self, name: str) -> List[RunPoint]:
        return list(self._points[name])

    @property
    def evaluations(self) -> int:
        return self._evaluations

    def pushed_bytes(self, name: str) -> int:
        return self._pushed.get(name, 0)

    def prefix_stats(self) -> Dict[str, int]:
        """Prefix-cache activity attributable to this evaluator's grids."""
        return {"hits": self.prefix_hits, "misses": self.prefix_misses}


class GridCellEvaluator(ArmEvaluator):
    """One multi-run cell per arm (the historical A/B lab grid)."""

    def __init__(
        self,
        engine: ExperimentEngine,
        arms: Dict[str, Arm],
        grid_name: str = "race",
        label_for: Optional[Callable[[str], str]] = None,
        seed_base: int = 0,
        conditions: Optional[ConditionSampler] = None,
    ):
        self.engine = engine
        self.arms = dict(arms)
        self.grid_name = grid_name
        self.label_for = label_for or (lambda name: name)
        self.seed_base = seed_base
        self.conditions = conditions
        self._results: Dict[str, CellResult] = {}
        self._runs: Dict[str, int] = {}
        self._evaluations = 0

    def ensure(self, requests: Dict[str, int]) -> None:
        unknown = set(requests) - set(self.arms)
        if unknown:
            raise KeyError(f"unknown arms: {sorted(unknown)}")
        grid = Grid(name=self.grid_name)
        scheduled: List[Tuple[str, int]] = []
        for name, runs in requests.items():
            if self._runs.get(name, 0) >= runs:
                continue
            spec, strategy = self.arms[name]
            grid.add(
                spec,
                strategy,
                runs=runs,
                seed_base=self.seed_base,
                conditions=self.conditions,
                label=self.label_for(name),
            )
            scheduled.append((name, runs))
        if not scheduled:
            return
        for (name, runs), result in zip(scheduled, self.engine.run(grid)):
            self._results[name] = result
            self._runs[name] = runs
            self._evaluations += runs

    def points(self, name: str) -> List[RunPoint]:
        result = self._results[name]
        return [
            RunPoint(si_ms=si, plt_ms=plt)
            for si, plt in zip(result.si_values, result.plt_values)
        ]

    def result(self, name: str) -> CellResult:
        """The arm's full cell result (lab rankings read aggregates)."""
        return self._results[name]

    @property
    def evaluations(self) -> int:
        return self._evaluations
