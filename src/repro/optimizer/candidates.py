"""Seeded candidate populations for the push-policy search.

Three sources feed a site's population, in order:

1. **Anchors** — the six §5 deployments themselves, materialized into
   :class:`~repro.optimizer.space.PushPolicy` points by asking each
   deployment's strategy for its actual :class:`PushPlan` against the
   variant's record database.  Anchors are never dropped by the
   population cap, which is what makes the oracle-gap guarantee hold
   by construction: the learned winner is selected from a pool that
   contains every hand-crafted deployment.
2. **Neighbors** — local mutations of each pushing anchor (drop/add a
   URL, swap adjacent pushes, truncate the tail, re-rank a URL to the
   front, perturb the interleaving offset or critical prefix), drawn
   from the site's per-resource trace table (URL, type, size of every
   authoritative record).
3. **Random restarts** — fresh policies sampled uniformly from the
   trace table, covering regions no anchor is near.

Everything is driven by one ``random.Random`` seeded from
``(site, seed)``, so a population is a pure function of its config —
re-running the optimizer regenerates the identical candidate list,
which in turn makes the whole search cache-addressable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..html.builder import BuiltSite, build_site
from ..html.resources import split_url
from ..html.spec import WebsiteSpec
from ..replay.recorddb import RecordDatabase
from ..replay.recorder import record_site
from ..strategies.critical import build_strategy_suite
from ..strategies.simple import NoPushStrategy
from .space import VARIANTS, PushPolicy


@dataclass(frozen=True)
class ResourceRow:
    """One row of the per-resource trace table: an authoritative,
    pushable record of the site."""

    url: str
    rtype: str
    size: int


@dataclass
class CandidateConfig:
    """Population shape; one instance drives every site of a run."""

    #: Cap on non-anchor candidates (anchors always survive).
    population: int = 14
    #: Local mutations generated per pushing anchor.
    neighbors_per_anchor: int = 2
    #: Fresh random policies sampled from the trace table.
    restarts: int = 4
    #: RNG seed; combined with the site name into the population seed.
    seed: int = 2018


@dataclass(frozen=True)
class Candidate:
    """A named policy in a site's population."""

    name: str
    policy: PushPolicy


@dataclass
class CandidateSet:
    """A site's population plus the deployment context to evaluate it."""

    site: str
    spec: WebsiteSpec
    optimized_spec: WebsiteSpec
    candidates: List[Candidate] = field(default_factory=list)
    #: Anchor candidate names (the §5 deployments), in suite order.
    anchors: List[str] = field(default_factory=list)

    def spec_for(self, policy: PushPolicy) -> WebsiteSpec:
        return self.optimized_spec if policy.variant == "optimized" else self.spec


def resource_table(spec: WebsiteSpec, db: Optional[RecordDatabase] = None) -> List[ResourceRow]:
    """The per-resource trace table: every authoritative record.

    Derived from the record database (what a real deployment would
    mine from its access logs), not the spec: URL, resource type, and
    response size per record, excluding the base document, in recorded
    order.
    """
    if db is None:
        db = record_site(build_site(spec))
    allowed = {spec.primary_domain} | set(spec.coalesced_domains)
    main_path = "/"
    rows = []
    for record in db:
        domain, path = split_url(record.url)
        if domain not in allowed or path == main_path:
            continue
        rows.append(
            ResourceRow(url=record.url, rtype=record.rtype.value, size=record.size)
        )
    return rows


# ----------------------------------------------------------------------
# anchor materialization
# ----------------------------------------------------------------------
def _authority(spec: WebsiteSpec):
    allowed = {spec.primary_domain} | set(spec.coalesced_domains)
    return lambda url: split_url(url)[0] in allowed


def _materialize(deployment, built: BuiltSite, db: RecordDatabase) -> PushPolicy:
    """One §5 deployment as a point of the policy space."""
    variant = "optimized" if deployment.name.endswith("optimized") else "plain"
    if isinstance(deployment.strategy, NoPushStrategy):
        return PushPolicy(variant=variant)
    plan = deployment.strategy.plan(
        built.html_url, db, _authority(deployment.spec)
    )
    critical = list(plan.critical_urls)
    urls = critical + [url for url in plan.urls if url not in critical]
    return PushPolicy(
        variant=variant,
        urls=tuple(urls),
        critical_count=len(critical),
        interleave_offset=plan.interleave_offset,
    )


# ----------------------------------------------------------------------
# mutation moves
# ----------------------------------------------------------------------
def _mutate(
    policy: PushPolicy,
    rng: random.Random,
    universe: List[str],
    offsets: List[Optional[int]],
) -> PushPolicy:
    """One local move; always returns a valid policy."""
    urls = list(policy.urls)
    critical = policy.critical_count
    offset = policy.interleave_offset
    moves = ["offset", "critical"]
    if urls:
        moves += ["drop", "swap", "front", "trim"]
    absent = [url for url in universe if url not in set(urls)]
    if absent:
        moves.append("add")
    move = rng.choice(sorted(moves))
    if move == "drop":
        index = rng.randrange(len(urls))
        del urls[index]
        if index < critical:
            critical -= 1
    elif move == "add":
        url = rng.choice(absent)
        urls.insert(rng.randint(0, len(urls)), url)
    elif move == "swap" and len(urls) >= 2:
        index = rng.randrange(len(urls) - 1)
        urls[index], urls[index + 1] = urls[index + 1], urls[index]
    elif move == "front":
        index = rng.randrange(len(urls))
        urls.insert(0, urls.pop(index))
    elif move == "trim":
        urls = urls[: max(1, len(urls) // 2)]
    elif move == "offset":
        offset = rng.choice([o for o in offsets if o != offset] or offsets)
    elif move == "critical":
        critical = rng.randint(0, len(urls))
    critical = min(critical, len(urls))
    return PushPolicy(
        variant=policy.variant,
        urls=tuple(urls),
        critical_count=critical,
        interleave_offset=offset,
    )


def _random_restart(
    rng: random.Random,
    tables: Dict[str, List[ResourceRow]],
    offsets: Dict[str, List[Optional[int]]],
) -> PushPolicy:
    variant = rng.choice(sorted(VARIANTS))
    universe = [row.url for row in tables[variant]]
    count = rng.randint(0, len(universe))
    urls = rng.sample(universe, count)
    offset = rng.choice(offsets[variant])
    critical = rng.randint(0, count) if offset is not None else 0
    return PushPolicy(
        variant=variant,
        urls=tuple(urls),
        critical_count=critical,
        interleave_offset=offset,
    )


# ----------------------------------------------------------------------
def generate_candidates(
    spec: WebsiteSpec, config: Optional[CandidateConfig] = None
) -> CandidateSet:
    """The seeded population for one site (see module docstring)."""
    config = config or CandidateConfig()
    suite = build_strategy_suite(spec)
    optimized_spec = next(
        d.spec for d in suite if d.name == "no_push_optimized"
    )
    built: Dict[str, BuiltSite] = {
        "plain": build_site(spec),
        "optimized": build_site(optimized_spec),
    }
    dbs = {variant: record_site(site) for variant, site in built.items()}
    specs = {"plain": spec, "optimized": optimized_spec}
    tables = {
        variant: resource_table(specs[variant], dbs[variant])
        for variant in VARIANTS
    }
    offsets: Dict[str, List[Optional[int]]] = {
        variant: [None, site.head_end_offset, site.head_end_offset * 2]
        for variant, site in built.items()
    }

    result = CandidateSet(site=spec.name, spec=spec, optimized_spec=optimized_spec)
    seen = set()

    def admit(name: str, policy: PushPolicy, anchor: bool = False) -> bool:
        fp = policy.fingerprint()
        if fp in seen:
            return False
        seen.add(fp)
        result.candidates.append(Candidate(name=name, policy=policy))
        if anchor:
            result.anchors.append(name)
        return True

    anchor_policies: List[Tuple[str, PushPolicy]] = []
    for deployment in suite:
        variant = "optimized" if deployment.name.endswith("optimized") else "plain"
        policy = _materialize(deployment, built[variant], dbs[variant])
        anchor_policies.append((deployment.name, policy))
        admit(f"s5/{deployment.name}", policy, anchor=True)

    rng = random.Random(f"optimizer/{spec.name}/{config.seed}")
    extras = 0
    for anchor_name, policy in anchor_policies:
        if not policy.urls:
            continue
        universe = [row.url for row in tables[policy.variant]]
        for index in range(config.neighbors_per_anchor):
            if extras >= config.population:
                break
            mutated = _mutate(policy, rng, universe, offsets[policy.variant])
            if admit(f"nbr{index}/{anchor_name}", mutated):
                extras += 1
    for index in range(config.restarts):
        if extras >= config.population:
            break
        if admit(f"rand{index}", _random_restart(rng, tables, offsets)):
            extras += 1
    return result
