"""CRN-paired many-armed racing: successive halving and a bandit.

The racer answers "which of these K policies is best on this site ×
condition" without paying K × max_runs page loads.  It is a pure
control loop over an abstract :class:`ArmEvaluator` — the engine-backed
evaluators live in :mod:`repro.optimizer.evaluators`, and the
Hypothesis suite drives the same loop with synthetic tables — so every
pruning decision is testable without a simulator.

**Scoring.**  With a baseline arm, an arm's score is the mean of its
*paired per-run differences*: ``(arm_si[r] - base_si[r]) / base_si[r]
× 100`` for each shared run index ``r``.  Common random numbers make
both loads of a pair draw identical network/jitter/loss streams
(:func:`repro.experiments.seeds.candidate_seed`), so strategy-
independent noise cancels in the difference and the paired CI
(:func:`repro.metrics.stats.confidence_interval`) shrinks far faster
than an unpaired one.  Without a baseline the score is the arm's
median SpeedIndex — the historical A/B lab ranking, which makes the
§6 selector a single-rung, no-pruning race.

**Halving** (``allocator="halving"``).  Rung ``i`` measures every
active arm at ``rungs[i]`` cumulative runs, prunes arms whose paired
CI is strictly dominated (lower bound above the best arm's upper
bound — applied only once an arm has ≥ 2 paired runs), then keeps the
best ``ceil(K / eta)`` by score and promotes them to the next rung.
Pruned arms never receive another run, which is where the evaluations
saved over exhaustive evaluation come from.

**Bandit** (``allocator="bandit"``).  Successive elimination: runs are
allocated one at a time to *all* surviving arms; after each round,
CI-dominated arms are eliminated.  Stops at the same total per-arm
budget (``rungs[-1]``) or when one arm remains.

Determinism: scores depend only on (arm, run index) measurements —
CRN seeds make those independent of evaluation order — and every
selection tie-breaks on ``(score, name)``, so the outcome is invariant
under permutations of the candidate list.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..metrics.stats import confidence_interval, median

#: Allocator registry; ``RacerConfig.allocator`` names an entry.
ALLOCATORS = ("halving", "bandit")


@dataclass(frozen=True)
class RunPoint:
    """One measured run of one arm."""

    si_ms: float
    plt_ms: float


class ArmEvaluator:
    """Measurement backend of a race (see the engine-backed
    implementations in :mod:`repro.optimizer.evaluators`).

    ``ensure`` guarantees each named arm has measurements for run
    indices ``[0, runs)``; ``points`` returns them in run order.
    Implementations must make a point depend only on ``(arm, run
    index)`` — never on which rung requested it — so rung geometry
    cannot change measured values.
    """

    def ensure(self, requests: Dict[str, int]) -> None:
        raise NotImplementedError

    def points(self, name: str) -> List[RunPoint]:
        raise NotImplementedError

    @property
    def evaluations(self) -> int:
        """Arm-runs scheduled so far (the pruning-savings numerator)."""
        raise NotImplementedError


@dataclass
class RacerConfig:
    #: Cumulative runs per rung (strictly increasing); the last entry
    #: is the full budget an exhaustive evaluation would pay per arm.
    rungs: Tuple[int, ...] = (2, 5)
    #: Keep ``ceil(active / eta)`` arms per rung; ``eta <= 1`` disables
    #: halving (every arm reaches the final rung).
    eta: int = 2
    #: Confidence level of the paired-difference pruning CIs.
    confidence: float = 0.95
    #: ``"halving"`` or ``"bandit"`` (successive elimination).
    allocator: str = "halving"
    #: Never prune below this many surviving arms.
    min_survivors: int = 1

    def __post_init__(self) -> None:
        if not self.rungs or list(self.rungs) != sorted(set(self.rungs)):
            raise ConfigError(f"rungs must be strictly increasing, got {self.rungs}")
        if self.rungs[0] < 1:
            raise ConfigError("rungs must start at >= 1 run")
        if self.allocator not in ALLOCATORS:
            raise ConfigError(
                f"unknown allocator {self.allocator!r} "
                f"(available: {', '.join(ALLOCATORS)})"
            )
        if self.min_survivors < 1:
            raise ConfigError("min_survivors must be >= 1")


@dataclass
class ArmScore:
    """An arm's paired score at some run count."""

    score: float
    ci_half: float
    runs: int

    @property
    def lower(self) -> float:
        return self.score - self.ci_half

    @property
    def upper(self) -> float:
        return self.score + self.ci_half


@dataclass
class ArmReport:
    name: str
    runs_used: int
    score: float
    ci_half: float
    #: Rung (halving) or round (bandit) at which the arm was pruned;
    #: ``None`` for arms that reached the final selection.
    pruned_at: Optional[int] = None


@dataclass
class RaceOutcome:
    winner: str
    #: Per-arm final standing, keyed by name.
    arms: Dict[str, ArmReport] = field(default_factory=dict)
    #: Active-arm sets entering each rung/round, in schedule order.
    rung_survivors: List[List[str]] = field(default_factory=list)
    #: Arm-runs actually scheduled (baseline included).
    evaluations: int = 0
    #: What exhaustive evaluation would schedule: every arm (baseline
    #: included) at the full per-arm budget.
    exhaustive_evaluations: int = 0
    baseline: Optional[str] = None

    @property
    def evaluations_saved(self) -> int:
        return self.exhaustive_evaluations - self.evaluations

    def ranking(self) -> List[ArmReport]:
        """Finalists first by score, then pruned arms by exit order."""
        return sorted(
            self.arms.values(),
            key=lambda arm: (
                arm.pruned_at is not None,
                -(arm.pruned_at or 0),
                arm.score,
                arm.name,
            ),
        )


class Racer:
    """Race named arms over an :class:`ArmEvaluator`."""

    def __init__(self, evaluator: ArmEvaluator, config: Optional[RacerConfig] = None):
        self.evaluator = evaluator
        self.config = config or RacerConfig()

    # ------------------------------------------------------------------
    def race(self, arms: Sequence[str], baseline: Optional[str] = None) -> RaceOutcome:
        names = list(arms)
        if len(set(names)) != len(names):
            raise ConfigError("arm names must be unique")
        if not names:
            raise ConfigError("race needs at least one arm")
        if baseline in names:
            raise ConfigError("the baseline is paired against, not raced")
        if self.config.allocator == "bandit":
            return self._race_bandit(names, baseline)
        return self._race_halving(names, baseline)

    # ------------------------------------------------------------------
    def score(self, name: str, baseline: Optional[str], runs: int) -> ArmScore:
        """An arm's paired score over its first ``runs`` measurements."""
        points = self.evaluator.points(name)[:runs]
        if len(points) < runs:
            raise ConfigError(
                f"arm {name!r} has {len(points)} points, rung wants {runs}"
            )
        if baseline is None:
            return ArmScore(
                score=median([p.si_ms for p in points]), ci_half=0.0, runs=runs
            )
        base = self.evaluator.points(baseline)[:runs]
        deltas = [
            (p.si_ms - b.si_ms) / b.si_ms * 100.0 for p, b in zip(points, base)
        ]
        center, half = confidence_interval(deltas, self.config.confidence)
        return ArmScore(score=center, ci_half=half, runs=runs)

    def _scores(
        self, active: List[str], baseline: Optional[str], runs: int
    ) -> Dict[str, ArmScore]:
        need = {name: runs for name in active}
        if baseline is not None:
            need[baseline] = runs
        self.evaluator.ensure(need)
        return {name: self.score(name, baseline, runs) for name in active}

    @staticmethod
    def _dominated(scored: Dict[str, ArmScore], runs: int) -> set:
        """Arms whose paired CI sits strictly above the best arm's.

        Degenerate single-run CIs have zero width, so CI pruning only
        engages once every arm carries at least two paired runs.
        """
        if runs < 2:
            return set()
        best = min(scored.values(), key=lambda s: s.score)
        return {
            name for name, s in scored.items() if s.lower > best.upper
        }

    def _select(
        self, active: List[str], scored: Dict[str, ArmScore], runs: int
    ) -> List[str]:
        """Survivors of one halving rung, ordered by (score, name)."""
        ordered = sorted(active, key=lambda name: (scored[name].score, name))
        if self.config.eta > 1:
            keep = max(
                self.config.min_survivors,
                math.ceil(len(active) / self.config.eta),
            )
            ordered = ordered[:keep]
        dominated = self._dominated(scored, runs)
        survivors = [name for name in ordered if name not in dominated]
        if len(survivors) < self.config.min_survivors:
            survivors = ordered[: self.config.min_survivors]
        return survivors

    # ------------------------------------------------------------------
    def _race_halving(self, names: List[str], baseline: Optional[str]) -> RaceOutcome:
        config = self.config
        outcome = RaceOutcome(
            winner="",
            baseline=baseline,
            exhaustive_evaluations=(len(names) + (1 if baseline else 0))
            * config.rungs[-1],
        )
        active = list(names)
        scored: Dict[str, ArmScore] = {}
        for rung_index, runs in enumerate(config.rungs):
            outcome.rung_survivors.append(list(active))
            scored = self._scores(active, baseline, runs)
            if rung_index == len(config.rungs) - 1:
                break
            survivors = self._select(active, scored, runs)
            for name in active:
                if name not in survivors:
                    s = scored[name]
                    outcome.arms[name] = ArmReport(
                        name=name,
                        runs_used=runs,
                        score=s.score,
                        ci_half=s.ci_half,
                        pruned_at=rung_index,
                    )
            active = survivors
        for name in active:
            s = scored[name]
            outcome.arms[name] = ArmReport(
                name=name, runs_used=s.runs, score=s.score, ci_half=s.ci_half
            )
        outcome.winner = min(active, key=lambda n: (scored[n].score, n))
        outcome.evaluations = self.evaluator.evaluations
        return outcome

    # ------------------------------------------------------------------
    def _race_bandit(self, names: List[str], baseline: Optional[str]) -> RaceOutcome:
        config = self.config
        budget = config.rungs[-1]
        outcome = RaceOutcome(
            winner="",
            baseline=baseline,
            exhaustive_evaluations=(len(names) + (1 if baseline else 0)) * budget,
        )
        active = list(names)
        scored: Dict[str, ArmScore] = {}
        for runs in range(1, budget + 1):
            outcome.rung_survivors.append(list(active))
            scored = self._scores(active, baseline, runs)
            if runs == budget or len(active) <= config.min_survivors:
                break
            dominated = self._dominated(scored, runs)
            survivors = [name for name in active if name not in dominated]
            if len(survivors) < config.min_survivors:
                ordered = sorted(active, key=lambda n: (scored[n].score, n))
                survivors = ordered[: config.min_survivors]
            for name in active:
                if name not in survivors:
                    s = scored[name]
                    outcome.arms[name] = ArmReport(
                        name=name,
                        runs_used=runs,
                        score=s.score,
                        ci_half=s.ci_half,
                        pruned_at=runs,
                    )
            active = survivors
        for name in active:
            s = scored[name]
            outcome.arms[name] = ArmReport(
                name=name, runs_used=s.runs, score=s.score, ci_half=s.ci_half
            )
        outcome.winner = min(active, key=lambda n: (scored[n].score, n))
        outcome.evaluations = self.evaluator.evaluations
        return outcome
