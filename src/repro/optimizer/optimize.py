"""The closed search loop: populations → races → policy table.

Per site × network condition:

1. :func:`~repro.optimizer.candidates.generate_candidates` seeds a
   population (the §5 anchors, their neighbors, random restarts);
2. the :class:`~repro.optimizer.racer.Racer` races it against the
   ``none`` baseline over a :class:`~repro.optimizer.evaluators.
   GridRunEvaluator` — CRN-paired single-run cells, sibling candidates
   forking shared replay prefixes;
3. the race winner and every anchor are re-measured at the full run
   budget (mostly cache hits — the racer already paid for survivor
   runs), and the better of winner-vs-anchors becomes the table entry.
   Anchors are themselves points of the searched space, so the learned
   policy is **never worse than the best hand-crafted deployment** at
   the shared seeds — the oracle-gap report records how often it is
   strictly better and by how much.

Everything downstream of the config is deterministic: populations are
seeded, seeds derive from (site, run), and the engine's cells are
content-addressed — so ``run_optimize`` with one config reproduces the
same :class:`~repro.optimizer.table.PolicyTable` bit for bit
(``table_sha`` and all), which is what the CI cross-core diff checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..experiments.engine import ExperimentEngine
from ..html.spec import WebsiteSpec
from ..metrics.stats import median
from ..netsim.conditions import profile
from ..strategies.simple import NoPushStrategy
from .candidates import CandidateConfig, CandidateSet, generate_candidates
from .evaluators import GridRunEvaluator
from .racer import Racer, RacerConfig
from .report import OracleGapReport, OracleGapRow
from .space import site_class
from .table import PolicyEntry, PolicyTable


@dataclass(frozen=True)
class OptimizeConfig:
    """One optimizer run; every field enters the table's meta block."""

    #: Site keys (``w1``..``w20``); ``None`` = the full corpus.
    sites: Optional[Tuple[str, ...]] = None
    #: Named condition profiles to search under — the paper's clean DSL
    #: testbed plus the bursty-loss line by default (verdicts flip with
    #: conditions, so the table is keyed by them).
    conditions: Tuple[str, ...] = ("clean_dsl", "lossy_dsl")
    #: Cumulative runs per halving rung; the last entry is the full
    #: per-arm budget.
    rungs: Tuple[int, ...] = (2, 5)
    eta: int = 2
    confidence: float = 0.95
    allocator: str = "halving"
    #: Non-anchor population cap per site (anchors always race).
    population: int = 10
    neighbors_per_anchor: int = 2
    restarts: int = 4
    seed: int = 2018

    @classmethod
    def quick(cls) -> "OptimizeConfig":
        """CI-sized: two small sites, tiny population, short rungs."""
        return cls(
            sites=("w3", "w9"),
            rungs=(2, 3),
            population=6,
            neighbors_per_anchor=1,
            restarts=2,
        )

    def meta(self) -> Dict[str, object]:
        return {
            "sites": list(self.sites) if self.sites else "w1-w20",
            "conditions": list(self.conditions),
            "rungs": list(self.rungs),
            "eta": self.eta,
            "confidence": self.confidence,
            "allocator": self.allocator,
            "population": self.population,
            "neighbors_per_anchor": self.neighbors_per_anchor,
            "restarts": self.restarts,
            "seed": self.seed,
        }


@dataclass
class OptimizeResult:
    table: PolicyTable
    report: OracleGapReport
    #: Search-cost accounting: arm-runs scheduled vs exhaustive, and
    #: fork-point prefix reuse across sibling candidates.
    stats: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        lines = ["policy table (site × condition → learned policy)"]
        for entry in self.table.entries:
            offset = (
                f"@{entry.policy.interleave_offset}"
                if entry.policy.interleaving
                else "-"
            )
            lines.append(
                f"  {entry.site:<12} {entry.site_class:<16} {entry.condition:<12} "
                f"ΔSI {entry.delta_si_pct:+7.2f}% ± {entry.ci_half_width:5.2f}  "
                f"Δp50 {entry.delta_p50_plt_pct:+7.2f}%  "
                f"push {entry.policy.push_count:>2} ({entry.policy.variant}, {offset})  "
                f"{entry.source}"
            )
        lines.append(f"  table_sha {self.table.sha()[:16]}")
        lines.append("")
        lines.append(self.report.render())
        lines.append("")
        saved = self.stats.get("saved", 0)
        lines.append(
            "search cost: "
            f"{self.stats.get('evaluations', 0):.0f} arm-runs scheduled vs "
            f"{self.stats.get('exhaustive', 0):.0f} exhaustive "
            f"({saved:.0f} saved, {self.stats.get('saved_pct', 0.0):.1f}%); "
            f"prefix cache {self.stats.get('prefix_hits', 0):.0f} hits / "
            f"{self.stats.get('prefix_misses', 0):.0f} misses "
            f"(hit rate {self.stats.get('prefix_hit_rate', 0.0):.2f})"
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "table": self.table.to_json(),
            "oracle_gap": self.report.to_json(),
            "stats": self.stats,
        }


def _resolve_specs(config: OptimizeConfig) -> List[WebsiteSpec]:
    from ..sites import realworld_sites

    sites = realworld_sites()
    keys = config.sites if config.sites is not None else tuple(sites)
    specs = []
    for key in keys:
        if key not in sites:
            raise ConfigError(
                f"unknown site {key!r}; the optimizer searches the "
                f"real-world corpus ({', '.join(sites)})"
            )
        specs.append(sites[key])
    return specs


def run_optimize(
    config: Optional[OptimizeConfig] = None,
    engine: Optional[ExperimentEngine] = None,
    specs: Optional[Sequence[WebsiteSpec]] = None,
) -> OptimizeResult:
    """Search every site × condition of the config (module docstring).

    ``specs`` overrides site-key resolution with explicit website specs
    (the golden guard injects corpus-generated sites this way).
    """
    config = config or OptimizeConfig()
    engine = engine or ExperimentEngine()
    specs = list(specs) if specs is not None else _resolve_specs(config)

    table = PolicyTable(meta=config.meta())
    report = OracleGapReport()
    totals = {
        "evaluations": 0,
        "race_evaluations": 0,
        "exhaustive": 0,
        "prefix_hits": 0,
        "prefix_misses": 0,
    }

    candidate_config = CandidateConfig(
        population=config.population,
        neighbors_per_anchor=config.neighbors_per_anchor,
        restarts=config.restarts,
        seed=config.seed,
    )
    racer_config = RacerConfig(
        rungs=config.rungs,
        eta=config.eta,
        confidence=config.confidence,
        allocator=config.allocator,
    )

    for spec in specs:
        population = generate_candidates(spec, candidate_config)
        sclass = site_class(spec)
        for condition_name in config.conditions:
            entry, row, cost = _search_cell(
                engine, population, sclass, condition_name, racer_config
            )
            table.add(entry)
            report.add(row)
            for key, value in cost.items():
                totals[key] += value

    scheduled = totals["evaluations"]
    exhaustive = totals["exhaustive"]
    leases = totals["prefix_hits"] + totals["prefix_misses"]
    stats = {
        "evaluations": scheduled,
        "race_evaluations": totals["race_evaluations"],
        "exhaustive": exhaustive,
        "saved": exhaustive - scheduled,
        "saved_pct": (exhaustive - scheduled) / exhaustive * 100.0 if exhaustive else 0.0,
        "prefix_hits": totals["prefix_hits"],
        "prefix_misses": totals["prefix_misses"],
        "prefix_hit_rate": totals["prefix_hits"] / leases if leases else 0.0,
    }
    return OptimizeResult(table=table, report=report, stats=stats)


def _search_cell(
    engine: ExperimentEngine,
    population: CandidateSet,
    sclass: str,
    condition_name: str,
    racer_config: RacerConfig,
) -> Tuple[PolicyEntry, OracleGapRow, Dict[str, int]]:
    """Race one site × condition; returns (table entry, gap row, cost)."""
    conditions = profile(condition_name)
    arms = {"none": (population.spec, NoPushStrategy())}
    by_name = {}
    for candidate in population.candidates:
        arms[candidate.name] = (
            population.spec_for(candidate.policy),
            candidate.policy.as_strategy(),
        )
        by_name[candidate.name] = candidate
    evaluator = GridRunEvaluator(
        engine,
        site=population.site,
        arms=arms,
        conditions=conditions,
        grid_name=f"optimize/{population.site}/{condition_name}",
    )
    racer = Racer(evaluator, racer_config)
    outcome = racer.race(
        [candidate.name for candidate in population.candidates], baseline="none"
    )
    race_evaluations = evaluator.evaluations

    # Full-budget re-measure of the winner and every anchor at the
    # shared CRN seeds: the oracle-gap comparison and the table entry
    # both report max-budget paired effects.
    budget = racer_config.rungs[-1]
    finalists = sorted(set(population.anchors) | {outcome.winner})
    evaluator.ensure({name: budget for name in finalists + ["none"]})
    scores = {name: racer.score(name, "none", budget) for name in finalists}

    # Anchors are searched points too, so the learned policy is the
    # best of (race winner, anchors) — never worse than hand-crafted.
    learned = min(finalists, key=lambda name: (scores[name].score, name))
    best_anchor = min(
        population.anchors, key=lambda name: (scores[name].score, name)
    )

    base_points = evaluator.points("none")[:budget]
    learned_points = evaluator.points(learned)[:budget]
    base_p50_plt = median([p.plt_ms for p in base_points])
    learned_p50_plt = median([p.plt_ms for p in learned_points])
    learned_score = scores[learned]

    entry = PolicyEntry(
        site=population.site,
        site_class=sclass,
        condition=condition_name,
        policy=by_name[learned].policy,
        source=learned,
        runs=budget,
        baseline_median_si_ms=median([p.si_ms for p in base_points]),
        delta_si_pct=learned_score.score,
        ci_half_width=learned_score.ci_half,
        delta_p50_plt_pct=(learned_p50_plt - base_p50_plt) / base_p50_plt * 100.0,
        pushed_bytes=evaluator.pushed_bytes(learned),
        oracle_gap_pct=learned_score.score - scores[best_anchor].score,
    )
    row = OracleGapRow(
        site=population.site,
        site_class=sclass,
        condition=condition_name,
        learned=learned,
        learned_delta_pct=learned_score.score,
        handcrafted=best_anchor,
        handcrafted_delta_pct=scores[best_anchor].score,
        ci_half_width=learned_score.ci_half,
    )
    cost = {
        "evaluations": evaluator.evaluations,
        "race_evaluations": race_evaluations,
        "exhaustive": outcome.exhaustive_evaluations,
        "prefix_hits": evaluator.prefix_hits,
        "prefix_misses": evaluator.prefix_misses,
    }
    return entry, row, cost
