"""The oracle-gap report: learned policies vs the paper's hand-crafted
strategies.

Meireles et al. frame the open question the paper leaves behind: how
far are hand-tuned push configurations from the *best possible* one?
Each row compares, per site × condition and at the full run budget
with shared CRN seeds, the racer's learned policy against the best of
the §5 deployments.  ``gap_pct`` is learned minus hand-crafted paired
ΔSI — negative means the search found something strictly better than
every deployment the paper ships; zero means a hand-crafted anchor was
(or tied) the optimum of the searched space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..metrics.stats import mean


@dataclass
class OracleGapRow:
    site: str
    site_class: str
    condition: str
    learned: str
    learned_delta_pct: float
    handcrafted: str
    handcrafted_delta_pct: float
    ci_half_width: float

    @property
    def gap_pct(self) -> float:
        return self.learned_delta_pct - self.handcrafted_delta_pct

    @property
    def within_ci(self) -> bool:
        """Learned ≥ best hand-crafted, up to the CI half-width — the
        acceptance bar for every row."""
        return self.gap_pct <= self.ci_half_width

    def to_json(self) -> dict:
        return {
            "site": self.site,
            "site_class": self.site_class,
            "condition": self.condition,
            "learned": self.learned,
            "learned_delta_pct": self.learned_delta_pct,
            "handcrafted": self.handcrafted,
            "handcrafted_delta_pct": self.handcrafted_delta_pct,
            "gap_pct": self.gap_pct,
            "ci_half_width": self.ci_half_width,
            "within_ci": self.within_ci,
        }


@dataclass
class OracleGapReport:
    rows: List[OracleGapRow] = field(default_factory=list)

    def add(self, row: OracleGapRow) -> None:
        self.rows.append(row)
        self.rows.sort(key=lambda r: (r.site, r.condition))

    # ------------------------------------------------------------------
    @property
    def all_within_ci(self) -> bool:
        return all(row.within_ci for row in self.rows)

    @property
    def strictly_better(self) -> int:
        """Rows where the search beat every hand-crafted deployment."""
        return sum(1 for row in self.rows if row.gap_pct < 0)

    def mean_gap_pct(self) -> float:
        if not self.rows:
            return 0.0
        return mean([row.gap_pct for row in self.rows])

    def to_json(self) -> Dict[str, object]:
        return {
            "rows": [row.to_json() for row in self.rows],
            "mean_gap_pct": self.mean_gap_pct(),
            "strictly_better": self.strictly_better,
            "all_within_ci": self.all_within_ci,
        }

    def render(self) -> str:
        lines = [
            "oracle gap: learned policy vs best hand-crafted §5 deployment",
            f"  {'site':<12} {'class':<16} {'condition':<12} "
            f"{'learned ΔSI':>12} {'best §5 ΔSI':>12} {'gap':>8}  source",
        ]
        for row in self.rows:
            marker = "" if row.within_ci else "  !! worse than hand-crafted"
            lines.append(
                f"  {row.site:<12} {row.site_class:<16} {row.condition:<12} "
                f"{row.learned_delta_pct:>+11.2f}% {row.handcrafted_delta_pct:>+11.2f}% "
                f"{row.gap_pct:>+7.2f}%  {row.learned}{marker}"
            )
        if self.rows:
            lines.append(
                f"  mean gap {self.mean_gap_pct():+.2f}% over {len(self.rows)} cells; "
                f"search strictly better in {self.strictly_better}, "
                f"all within CI: {'yes' if self.all_within_ci else 'NO'}"
            )
        return "\n".join(lines)
