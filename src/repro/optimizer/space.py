"""The push-policy search space.

A :class:`PushPolicy` is one point in the space the paper leaves
unexplored (§7, "what is the best possible push policy?"): which
authoritative resources to push, in what order, how many, whether the
deployment is the plain or the critical-CSS-optimized site, and at
which byte offset the interleaving scheduler pauses the HTML.  The
hand-crafted §5 deployments are six specific points of this space; the
optimizer races populations of neighboring and random points against
them.

Policies are immutable value objects: content-fingerprintable (the
cache key of every candidate cell embeds the policy through its
strategy), JSON round-trippable (the ``PolicyTable`` artifact), and
convertible to a deployable strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigError
from ..html.resources import ResourceType
from ..html.spec import WebsiteSpec
from ..strategies.table import TablePolicyStrategy

#: The two deployment variants a policy can target: the site as
#: recorded, or the §5 critical-CSS rewrite (penthouse transformation).
VARIANTS = ("plain", "optimized")


@dataclass(frozen=True)
class PushPolicy:
    """One candidate push policy: deployment variant + ordered pushes.

    ``urls`` is the full ordered push list; the first
    ``critical_count`` entries form the critical prefix that the
    interleaving scheduler weaves into the HTML at
    ``interleave_offset`` (ignored when the offset is ``None``).  An
    empty ``urls`` is the "push nothing" policy — a legitimate search
    point (for many sites the best policy *is* to not push).
    """

    variant: str = "plain"
    urls: Tuple[str, ...] = ()
    critical_count: int = 0
    interleave_offset: Optional[int] = None

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ConfigError(
                f"unknown policy variant {self.variant!r} "
                f"(available: {', '.join(VARIANTS)})"
            )
        if not 0 <= self.critical_count <= len(self.urls):
            raise ConfigError(
                f"critical_count {self.critical_count} outside "
                f"[0, {len(self.urls)}]"
            )
        if len(set(self.urls)) != len(self.urls):
            raise ConfigError("policy urls must be unique")

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content address of the policy itself."""
        from ..experiments.engine.fingerprint import fingerprint

        return fingerprint({"push_policy": self.to_json()})

    def to_json(self) -> dict:
        return {
            "variant": self.variant,
            "urls": list(self.urls),
            "critical_count": self.critical_count,
            "interleave_offset": self.interleave_offset,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "PushPolicy":
        return cls(
            variant=payload["variant"],
            urls=tuple(payload["urls"]),
            critical_count=payload["critical_count"],
            interleave_offset=payload["interleave_offset"],
        )

    # ------------------------------------------------------------------
    def as_strategy(self, name: Optional[str] = None) -> TablePolicyStrategy:
        """The deployable strategy replaying this policy.

        The default name embeds the policy fingerprint, so a learned
        policy's cells stay content-addressed and re-runs of the
        optimizer reproduce identical cache keys.
        """
        return TablePolicyStrategy(
            urls=self.urls,
            critical_count=self.critical_count,
            interleave_offset=self.interleave_offset,
            name=name or f"policy_{self.fingerprint()[:12]}",
        )

    @property
    def push_count(self) -> int:
        return len(self.urls)

    @property
    def interleaving(self) -> bool:
        return self.interleave_offset is not None and self.critical_count > 0


def site_class(spec: WebsiteSpec) -> str:
    """Coarse structural class of a site, the table's grouping key.

    The verdict-flipping features the paper identifies (§5, Fig. 6)
    are structural: object count, render-blocking CSS/JS in the head,
    and byte share of images.  The class is derived from the spec
    alone, so it is deterministic and available without any loads.
    """
    resources = list(spec.resources)
    if len(resources) >= 50:
        return "many_objects"
    blocking_js = sum(
        1
        for res in resources
        if res.rtype == ResourceType.JS
        and res.in_head
        and not (res.async_script or res.defer_script)
    )
    if blocking_js >= 2:
        return "script_blocking"
    head_css = sum(
        1
        for res in resources
        if res.rtype == ResourceType.CSS and res.in_head and not res.media_print
    )
    if head_css >= 2:
        return "style_blocking"
    total_bytes = sum(res.size for res in resources) or 1
    image_bytes = sum(
        res.size for res in resources if res.rtype == ResourceType.IMAGE
    )
    if image_bytes / total_bytes >= 0.5:
        return "image_heavy"
    return "small_static"
