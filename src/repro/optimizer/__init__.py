"""Closed-loop push-policy optimizer (beyond the paper, §7).

The paper measures six hand-crafted push deployments per site (§5) and
leaves open how far they sit from the best achievable policy.  This
package searches that space per site × network condition:

- :mod:`~repro.optimizer.space` — the policy space and site classes;
- :mod:`~repro.optimizer.candidates` — seeded populations (§5 anchors,
  their neighbors, random restarts) mined from record databases;
- :mod:`~repro.optimizer.racer` — CRN-paired successive halving (and a
  successive-elimination bandit) over an abstract arm evaluator;
- :mod:`~repro.optimizer.evaluators` — the engine-backed evaluators
  (run-granular CRN cells with prefix forking; the historical A/B lab
  cell geometry);
- :mod:`~repro.optimizer.table` — the content-addressed ``PolicyTable``
  artifact;
- :mod:`~repro.optimizer.report` — the oracle-gap report;
- :mod:`~repro.optimizer.optimize` — the orchestration behind
  ``python -m repro optimize``.
"""

from .candidates import (
    Candidate,
    CandidateConfig,
    CandidateSet,
    ResourceRow,
    generate_candidates,
    resource_table,
)
from .evaluators import GridCellEvaluator, GridRunEvaluator
from .optimize import OptimizeConfig, OptimizeResult, run_optimize
from .racer import (
    ALLOCATORS,
    ArmEvaluator,
    ArmReport,
    ArmScore,
    RaceOutcome,
    Racer,
    RacerConfig,
    RunPoint,
)
from .report import OracleGapReport, OracleGapRow
from .space import VARIANTS, PushPolicy, site_class
from .table import TABLE_FORMAT, PolicyEntry, PolicyTable

__all__ = [
    "ALLOCATORS",
    "ArmEvaluator",
    "ArmReport",
    "ArmScore",
    "Candidate",
    "CandidateConfig",
    "CandidateSet",
    "GridCellEvaluator",
    "GridRunEvaluator",
    "OptimizeConfig",
    "OptimizeResult",
    "OracleGapReport",
    "OracleGapRow",
    "PolicyEntry",
    "PolicyTable",
    "PushPolicy",
    "RaceOutcome",
    "Racer",
    "RacerConfig",
    "ResourceRow",
    "RunPoint",
    "TABLE_FORMAT",
    "VARIANTS",
    "generate_candidates",
    "resource_table",
    "run_optimize",
    "site_class",
]
