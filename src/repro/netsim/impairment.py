"""Deterministic packet-impairment pipeline for shared links.

The paper's testbed is a clean pipe (50 ms RTT, 16/1 Mbit/s, no loss,
§4.1), but the literature it builds on shows that transport-level
impairments can invert its verdicts: Goel et al. (domain sharding in
lossy cellular networks) and Elkhatib et al. (network variables vs
SPDY) both find that loss and delay variability change who wins.  This
module models those impairments as a per-link pipeline applied to every
segment a :class:`repro.netsim.link.SharedLink` transmits:

* **loss** — i.i.d. Bernoulli (:class:`IIDLoss`) or bursty two-state
  Gilbert-Elliott (:class:`GilbertElliottLoss`), the standard model for
  correlated wireless/cellular loss;
* **jitter** — uniform extra one-way delay per packet;
* **reordering** — a fraction of packets is held back by a fixed extra
  delay so later packets overtake them (netem's ``reorder`` semantics);
* **bandwidth variation** — block fading: the link rate is scaled by a
  multiplier redrawn every ``interval_ms`` (cellular capacity churn).

Determinism contract: every random decision comes from the single
``random.Random`` handed to the pipeline, drawn in a **fixed order per
packet** (loss-state transition, loss draw, jitter draw, reorder draw);
bandwidth multipliers are drawn lazily, one per elapsed interval.  The
RNG is seeded from the per-cell impairment seed
(:func:`repro.experiments.seeds.impairment_seed`), so a re-run of the
same cell replays the exact same impairment pattern bit for bit.  When
no pipeline is attached the link takes its historical code path and the
wire behaviour is bit-identical to the impairment-free model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..units import require_fraction, require_non_negative, require_positive


@dataclass(frozen=True)
class IIDLoss:
    """Independent per-packet Bernoulli loss with probability ``rate``."""

    rate: float

    def __post_init__(self) -> None:
        require_fraction("IIDLoss.rate", self.rate)


@dataclass(frozen=True)
class GilbertElliottLoss:
    """Two-state Markov (Gilbert-Elliott) burst loss.

    The chain advances one step per packet: from the good state it
    enters the bad state with ``p_enter_bad``; from the bad state it
    recovers with ``p_exit_bad``.  A packet is then lost with the loss
    probability of the *current* state.  The stationary loss rate is
    ``good_loss + (bad_loss - good_loss) * p_enter_bad / (p_enter_bad +
    p_exit_bad)``; the mean burst length is ``1 / p_exit_bad`` packets.
    """

    p_enter_bad: float
    p_exit_bad: float
    good_loss: float = 0.0
    bad_loss: float = 1.0

    def __post_init__(self) -> None:
        require_fraction("GilbertElliottLoss.p_enter_bad", self.p_enter_bad)
        require_fraction("GilbertElliottLoss.p_exit_bad", self.p_exit_bad)
        require_fraction("GilbertElliottLoss.good_loss", self.good_loss)
        require_fraction("GilbertElliottLoss.bad_loss", self.bad_loss)

    @property
    def stationary_loss_rate(self) -> float:
        total = self.p_enter_bad + self.p_exit_bad
        if total == 0.0:
            return self.good_loss
        bad_share = self.p_enter_bad / total
        return self.good_loss + (self.bad_loss - self.good_loss) * bad_share


#: Either loss model is accepted wherever a loss stage is configured.
LossModel = Union[IIDLoss, GilbertElliottLoss]


@dataclass(frozen=True)
class JitterSpec:
    """Uniform extra one-way delay in ``[0, max_ms]`` per packet."""

    max_ms: float

    def __post_init__(self) -> None:
        require_non_negative("JitterSpec.max_ms", self.max_ms)


@dataclass(frozen=True)
class ReorderSpec:
    """Hold back a ``rate`` fraction of packets by ``extra_delay_ms``.

    A held packet is scheduled ``extra_delay_ms`` later than its FIFO
    position, so any packet serialized within that window overtakes it —
    the same mechanism netem's ``reorder``/``gap`` options use.
    """

    rate: float
    extra_delay_ms: float = 20.0

    def __post_init__(self) -> None:
        require_fraction("ReorderSpec.rate", self.rate)
        require_non_negative("ReorderSpec.extra_delay_ms", self.extra_delay_ms)


@dataclass(frozen=True)
class BandwidthVariationSpec:
    """Block-fading rate variation: every ``interval_ms`` the link rate
    is scaled by a fresh multiplier drawn uniformly from
    ``[1 - amplitude, 1 + amplitude]``."""

    amplitude: float
    interval_ms: float = 250.0

    def __post_init__(self) -> None:
        require_non_negative("BandwidthVariationSpec.amplitude", self.amplitude)
        if self.amplitude >= 1.0:
            from ..errors import ConfigError

            raise ConfigError(
                f"BandwidthVariationSpec.amplitude must be < 1 (the rate must "
                f"stay positive), got {self.amplitude!r}"
            )
        require_positive("BandwidthVariationSpec.interval_ms", self.interval_ms)


@dataclass(frozen=True)
class ImpairmentConfig:
    """Composable per-link impairment stages; ``None`` disables a stage.

    Carried by :class:`repro.netsim.conditions.NetworkConditions`, so it
    is part of every experiment cell's content-addressed fingerprint —
    two cells differing only in impairments cache separately.
    """

    #: Immutable config; forked replay worlds share it
    #: (see repro.sim.snapshot).
    _fork_atomic = True

    loss: Optional[LossModel] = None
    jitter: Optional[JitterSpec] = None
    reorder: Optional[ReorderSpec] = None
    bandwidth: Optional[BandwidthVariationSpec] = None

    @property
    def enabled(self) -> bool:
        return any((self.loss, self.jitter, self.reorder, self.bandwidth))


class ImpairmentPipeline:
    """Runtime impairment state for one link (one direction).

    Both of a topology's pipelines share one RNG — the discrete-event
    order of ``transmit`` calls is itself deterministic, so a shared
    stream stays reproducible — but each keeps its own Gilbert-Elliott
    and fading state.
    """

    def __init__(self, config: ImpairmentConfig, rng: random.Random, name: str = "impairment"):
        self.config = config
        self._rng = rng
        self.name = name
        #: Optional event tracer (set by the topology when tracing is
        #: on); drops/reorders are reported read-only, after the RNG
        #: draws, so tracing never perturbs the impairment pattern.
        self.tracer = None
        self._bad_state = False
        self._bw_multiplier = 1.0
        self._bw_next_update = 0.0
        self.packets_seen = 0
        self.packets_dropped = 0
        self.packets_reordered = 0

    def rate_multiplier(self, now: float) -> float:
        """Current bandwidth multiplier; advances the fading process
        one draw per interval boundary elapsed since the last call."""
        bandwidth = self.config.bandwidth
        if bandwidth is None:
            return 1.0
        while self._bw_next_update <= now:
            self._bw_multiplier = 1.0 + bandwidth.amplitude * (
                2.0 * self._rng.random() - 1.0
            )
            self._bw_next_update += bandwidth.interval_ms
        return self._bw_multiplier

    def packet_fate(self, now: float) -> Tuple[bool, float]:
        """Decide one packet's fate: ``(dropped, extra_delay_ms)``.

        Draw order per packet is fixed (loss-state transition, loss,
        jitter, reorder); a dropped packet consumes no jitter/reorder
        draws.  Both facts are part of the determinism contract.
        """
        self.packets_seen += 1
        config = self.config
        rng = self._rng
        loss = config.loss
        if loss is not None:
            if type(loss) is GilbertElliottLoss:
                if self._bad_state:
                    if rng.random() < loss.p_exit_bad:
                        self._bad_state = False
                elif rng.random() < loss.p_enter_bad:
                    self._bad_state = True
                probability = loss.bad_loss if self._bad_state else loss.good_loss
            else:
                probability = loss.rate
            if probability > 0.0 and rng.random() < probability:
                self.packets_dropped += 1
                if self.tracer is not None:
                    self.tracer.packet_dropped(self.name, self.packets_seen)
                return True, 0.0
        extra = 0.0
        if config.jitter is not None and config.jitter.max_ms > 0.0:
            extra += rng.uniform(0.0, config.jitter.max_ms)
        reorder = config.reorder
        if reorder is not None and reorder.rate > 0.0 and rng.random() < reorder.rate:
            extra += reorder.extra_delay_ms
            self.packets_reordered += 1
            if self.tracer is not None:
                self.tracer.packet_reordered(
                    self.name, self.packets_seen, reorder.extra_delay_ms
                )
        return False, extra
