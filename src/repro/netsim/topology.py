"""Testbed topology: one client behind an access link, many origins.

Mahimahi spawns one local server per recorded IP inside network
namespaces so that the replayed page uses the same connection pattern
as the live Internet (§4.1).  The equivalent here: every origin IP is a
:class:`Host`, and every connection from the client to any host crosses
the same shared downlink/uplink pair (the emulated DSL access link).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from ..errors import NetworkError
from ..sim import Simulator
from .conditions import NetworkConditions
from .handshake import (
    QUIC_0RTT_HANDSHAKE,
    QUIC_HANDSHAKE,
    TLS12_HANDSHAKE,
    HandshakeModel,
)
from .impairment import ImpairmentPipeline
from .link import SharedLink
from .quic import QuicConnection
from .tcp import TcpConnection


class Host:
    """A server host identified by an IP, serving one or more domains."""

    def __init__(self, ip: str):
        self.ip = ip
        self.domains: set = set()

    def add_domain(self, domain: str) -> None:
        self.domains.add(domain)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host(ip={self.ip!r}, domains={sorted(self.domains)!r})"


class Topology:
    """The client's access link plus the set of origin hosts."""

    def __init__(
        self,
        sim: Simulator,
        conditions: NetworkConditions,
        handshake: HandshakeModel = TLS12_HANDSHAKE,
        rng: Optional[random.Random] = None,
        impairment_rng: Optional[random.Random] = None,
        tracer=None,
    ):
        self.sim = sim
        self.conditions = conditions
        self.handshake = handshake
        self._rng = rng or random.Random(0)
        #: Optional event tracer, threaded into every TCP connection and
        #: impairment pipeline this topology creates.
        self._tracer = tracer
        # The impairment pipelines get a *separate* RNG stream (seeded
        # per cell via experiments.seeds.impairment_seed) so that adding
        # or removing impairments never perturbs the handshake/jitter
        # draws of the historical stream — and so a clean run performs
        # zero impairment draws, keeping it bit-identical to the
        # pre-impairment model.
        down_pipeline = up_pipeline = None
        impairment = conditions.impairment
        if impairment is not None and impairment.enabled:
            shared_rng = impairment_rng or random.Random(0)
            down_pipeline = ImpairmentPipeline(impairment, shared_rng, name="downlink")
            up_pipeline = ImpairmentPipeline(impairment, shared_rng, name="uplink")
            if tracer is not None:
                down_pipeline.tracer = tracer
                up_pipeline.tracer = tracer
        self.downlink = SharedLink(
            sim,
            conditions.downlink_bytes_per_ms,
            conditions.one_way_ms,
            jitter_ms=conditions.jitter_ms,
            rng=self._rng,
            name="downlink",
            impairments=down_pipeline,
        )
        self.uplink = SharedLink(
            sim,
            conditions.uplink_bytes_per_ms,
            conditions.one_way_ms,
            jitter_ms=conditions.jitter_ms,
            rng=self._rng,
            name="uplink",
            impairments=up_pipeline,
        )
        self._hosts: Dict[str, Host] = {}
        self._domain_to_ip: Dict[str, str] = {}
        self._dns_cache: set = set()
        self._connection_count = 0
        #: Origins already visited over QUIC this page load; a second
        #: connection to one resumes the session (0-RTT accounting)
        #: when ``conditions.quic_0rtt`` allows it.
        self._quic_sessions: set = set()

    # ------------------------------------------------------------------
    # host / DNS management
    # ------------------------------------------------------------------
    def add_host(self, ip: str, domains) -> Host:
        host = self._hosts.get(ip)
        if host is None:
            host = Host(ip)
            self._hosts[ip] = host
        for domain in domains:
            existing = self._domain_to_ip.get(domain)
            if existing is not None and existing != ip:
                raise NetworkError(f"domain {domain} already mapped to {existing}")
            host.add_domain(domain)
            self._domain_to_ip[domain] = ip
        return host

    def resolve(self, domain: str) -> str:
        """DNS lookup: domain to IP (raises for unknown domains)."""
        try:
            return self._domain_to_ip[domain]
        except KeyError:
            raise NetworkError(f"no host serves domain {domain!r}") from None

    def host_for_domain(self, domain: str) -> Host:
        return self._hosts[self.resolve(domain)]

    @property
    def hosts(self) -> Dict[str, Host]:
        return dict(self._hosts)

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    def open_connection(
        self,
        domain: str,
        on_established: Callable[[TcpConnection], None],
    ) -> None:
        """Open a transport connection to the host serving ``domain``.

        The handshake delay elapses before ``on_established`` is
        invoked with the ready connection.  Over TCP that is DNS (if
        uncached) + TCP + TLS; over QUIC it is DNS + one combined
        round trip, or none at all for a 0-RTT resumption of an origin
        already visited this page load.
        """
        ip = self.resolve(domain)
        dns_cached = domain in self._dns_cache
        self._dns_cache.add(domain)
        if self.conditions.transport == "quic":
            resumable = self.conditions.quic_0rtt and ip in self._quic_sessions
            self._quic_sessions.add(ip)
            model = QUIC_0RTT_HANDSHAKE if resumable else QUIC_HANDSHAKE
            delay = model.connect_ms(self.conditions, dns_cached)
            self._connection_count += 1
            name = f"quic-{self._connection_count}-{domain}"

            def establish_quic() -> None:
                conn = QuicConnection(
                    self.sim,
                    downlink=self.downlink,
                    uplink=self.uplink,
                    conditions=self.conditions,
                    rng=self._rng,
                    name=name,
                    tracer=self._tracer,
                )
                on_established(conn)

            self.sim.schedule(delay, establish_quic)
            return
        delay = self.handshake.connect_ms(self.conditions, dns_cached)
        self._connection_count += 1
        name = f"tcp-{self._connection_count}-{domain}"

        def establish() -> None:
            conn = TcpConnection(
                self.sim,
                downlink=self.downlink,
                uplink=self.uplink,
                conditions=self.conditions,
                rng=self._rng,
                name=name,
                tracer=self._tracer,
            )
            on_established(conn)

        self.sim.schedule(delay, establish)

    def prewarm_dns(self, domain: str) -> None:
        """Mark a domain's DNS entry as cached (used for the navigation
        origin, whose lookup happens before ``connectEnd``)."""
        self._dns_cache.add(domain)

    @property
    def connections_opened(self) -> int:
        return self._connection_count
