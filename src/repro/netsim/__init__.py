"""Network substrate: links, TCP, handshakes, and condition profiles.

This package replaces the paper's Linux network namespaces + ``tc``
emulation with a deterministic discrete-event model (see DESIGN.md §2).
"""

from .conditions import (
    CABLE,
    CELLULAR,
    DSL_TESTBED,
    ConditionSampler,
    FixedConditions,
    InternetConditions,
    NetworkConditions,
)
from .handshake import TLS12_HANDSHAKE, TLS13_HANDSHAKE, HandshakeModel
from .link import SharedLink
from .tcp import MSS, TcpConnection, TcpEndpoint
from .topology import Host, Topology

__all__ = [
    "CABLE",
    "CELLULAR",
    "DSL_TESTBED",
    "ConditionSampler",
    "FixedConditions",
    "HandshakeModel",
    "Host",
    "InternetConditions",
    "MSS",
    "NetworkConditions",
    "SharedLink",
    "TLS12_HANDSHAKE",
    "TLS13_HANDSHAKE",
    "TcpConnection",
    "TcpEndpoint",
    "Topology",
]
