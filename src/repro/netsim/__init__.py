"""Network substrate: links, TCP, handshakes, and condition profiles.

This package replaces the paper's Linux network namespaces + ``tc``
emulation with a deterministic discrete-event model (see DESIGN.md §2).
"""

from .conditions import (
    CABLE,
    CELLULAR,
    CELLULAR_3G,
    CELLULAR_LTE,
    CLEAN_DSL,
    DSL_TESTBED,
    FIBER,
    LOSSY_DSL,
    PROFILES,
    ConditionSampler,
    FixedConditions,
    InternetConditions,
    NetworkConditions,
    profile,
)
from .congestion import CONGESTION_CONTROLS, CubicCC, RenoCC, make_congestion_control
from .handshake import TLS12_HANDSHAKE, TLS13_HANDSHAKE, HandshakeModel
from .impairment import (
    BandwidthVariationSpec,
    GilbertElliottLoss,
    IIDLoss,
    ImpairmentConfig,
    ImpairmentPipeline,
    JitterSpec,
    ReorderSpec,
)
from .link import SharedLink
from .tcp import MSS, TcpConnection, TcpEndpoint
from .topology import Host, Topology

__all__ = [
    "BandwidthVariationSpec",
    "CABLE",
    "CELLULAR",
    "CELLULAR_3G",
    "CELLULAR_LTE",
    "CLEAN_DSL",
    "CONGESTION_CONTROLS",
    "ConditionSampler",
    "CubicCC",
    "DSL_TESTBED",
    "FIBER",
    "FixedConditions",
    "GilbertElliottLoss",
    "HandshakeModel",
    "Host",
    "IIDLoss",
    "ImpairmentConfig",
    "ImpairmentPipeline",
    "InternetConditions",
    "JitterSpec",
    "LOSSY_DSL",
    "MSS",
    "NetworkConditions",
    "PROFILES",
    "RenoCC",
    "ReorderSpec",
    "SharedLink",
    "TLS12_HANDSHAKE",
    "TLS13_HANDSHAKE",
    "TcpConnection",
    "TcpEndpoint",
    "Topology",
    "make_congestion_control",
    "profile",
]
