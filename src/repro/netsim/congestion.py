"""Pluggable congestion control for the TCP model.

The original send path hard-coded Reno-style window arithmetic inside
``_HalfConnection``; the impairment work makes the controller a policy
object so lossy-network experiments can compare algorithms.  Two are
provided:

* :class:`RenoCC` — the historical behaviour, extracted verbatim: IW10
  slow start, +1 MSS/RTT congestion avoidance, multiplicative decrease
  by half on fast retransmit, collapse to one MSS on RTO.  With the
  default profile this reproduces the pre-refactor float arithmetic
  operation for operation, which is what keeps the clean-path golden
  fingerprints bit-identical.
* :class:`CubicCC` — a simplified RFC 8312 CUBIC: window growth follows
  the cubic ``W(t) = C·(t-K)³ + W_max`` curve anchored at the last loss
  event, with β = 0.7 multiplicative decrease.  Less brutal backoff and
  fast re-probing toward ``W_max`` are exactly the traits that separate
  it from Reno on lossy links.

Controllers are deterministic: they draw no randomness, and their state
advances only on ACK/loss events whose order the simulator fixes.
"""

from __future__ import annotations

from ..errors import ConfigError

#: Initial congestion window, in segments (RFC 6928), shared by all
#: controllers.  Mirrors ``repro.netsim.tcp.INITIAL_WINDOW_SEGMENTS``.
INITIAL_WINDOW_SEGMENTS = 10

#: Initial slow-start threshold (bytes), the historical constant.
INITIAL_SSTHRESH = float(64 * 1024)


class CongestionControl:
    """Interface: a congestion window driven by ACK and loss events.

    Attributes:
        cwnd: congestion window in bytes (float; the sender compares
            flight size against it).
        ssthresh: slow-start threshold in bytes.
    """

    name = "base"

    def __init__(self, mss: int):
        self.mss = mss
        self.cwnd = float(INITIAL_WINDOW_SEGMENTS * mss)
        self.ssthresh = INITIAL_SSTHRESH

    def on_ack(self, newly_acked: int, now: float) -> None:
        """New cumulative data was acknowledged."""
        raise NotImplementedError

    def on_fast_retransmit(self, now: float) -> None:
        """Three duplicate ACKs signalled a lost segment."""
        raise NotImplementedError

    def on_timeout(self, now: float) -> None:
        """An RTO fired; the pipe is assumed drained."""
        raise NotImplementedError

    def trace_sample(self, tracer, conn: str, trigger: str, rto_ms: float, in_flight: int) -> None:
        """Emit a cwnd evolution sample to a ``repro.trace`` tracer.

        Called by the TCP sender after each controller decision (behind
        its tracing guard); read-only, so traced and untraced runs stay
        bit-identical.
        """
        tracer.cwnd_sample(conn, trigger, self.cwnd, self.ssthresh, rto_ms, in_flight)


class RenoCC(CongestionControl):
    """NewReno-flavoured AIMD, bit-identical to the historical inline path."""

    name = "reno"

    def on_ack(self, newly_acked: int, now: float) -> None:
        if self.cwnd < self.ssthresh:
            # Slow start: grow by the acked bytes (bounded per ACK).
            self.cwnd += min(newly_acked, 2 * self.mss)
        else:
            # Congestion avoidance: ~1 MSS per RTT.
            self.cwnd += self.mss * self.mss / self.cwnd

    def on_fast_retransmit(self, now: float) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0 * self.mss)
        self.cwnd = self.ssthresh

    def on_timeout(self, now: float) -> None:
        # Tahoe-style: collapse the window and re-enter slow start.
        self.ssthresh = max(self.cwnd / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)


class CubicCC(CongestionControl):
    """Simplified RFC 8312 CUBIC (C = 0.4, β = 0.7).

    The congestion-avoidance window tracks the cubic curve anchored at
    the window before the last loss (``W_max`` segments): concave while
    approaching it, a plateau around it, then convex probing beyond.
    Per-ACK growth is ``(target - w) / w`` segments (clamped to one MSS
    per ACK), the RFC's window-update rule without its separate
    TCP-friendly estimator — a floor of 1% of an MSS per ACK keeps the
    plateau from stalling entirely.
    """

    name = "cubic"

    #: Cubic scaling constant, segments per second cubed (RFC 8312 §5).
    C = 0.4
    #: Multiplicative-decrease factor (RFC 8312 §4.5).
    BETA = 0.7

    def __init__(self, mss: int):
        super().__init__(mss)
        self._w_max = 0.0  # segments, window just before the last loss
        self._epoch_start: float = -1.0  # ms; < 0 means "no epoch yet"
        self._k = 0.0  # seconds until the curve re-reaches w_max

    def on_ack(self, newly_acked: int, now: float) -> None:
        mss = self.mss
        if self.cwnd < self.ssthresh:
            self.cwnd += min(newly_acked, 2 * mss)
            return
        w = self.cwnd / mss
        if self._epoch_start < 0.0:
            self._epoch_start = now
            if self._w_max > w:
                self._k = ((self._w_max - w) / self.C) ** (1.0 / 3.0)
            else:
                self._k = 0.0
                self._w_max = w
        t = (now - self._epoch_start) / 1000.0
        target = self.C * (t - self._k) ** 3 + self._w_max
        growth = (target - w) / w if target > w else 0.0
        self.cwnd += mss * min(max(growth, 0.01), 1.0)

    def _loss_event(self) -> None:
        self._w_max = self.cwnd / self.mss
        self._epoch_start = -1.0

    def on_fast_retransmit(self, now: float) -> None:
        self._loss_event()
        self.ssthresh = max(self.cwnd * self.BETA, 2.0 * self.mss)
        self.cwnd = self.ssthresh

    def on_timeout(self, now: float) -> None:
        self._loss_event()
        self.ssthresh = max(self.cwnd * self.BETA, 2.0 * self.mss)
        self.cwnd = float(self.mss)


#: Registry of selectable controllers, keyed by the profile field
#: ``NetworkConditions.congestion_control``.
CONGESTION_CONTROLS = {
    RenoCC.name: RenoCC,
    CubicCC.name: CubicCC,
}


def make_congestion_control(name: str, mss: int) -> CongestionControl:
    """Instantiate the named controller; raises ``ConfigError`` for
    unknown names so profile typos fail loudly at connection setup."""
    try:
        cls = CONGESTION_CONTROLS[name]
    except KeyError:
        raise ConfigError(
            f"unknown congestion control {name!r} "
            f"(available: {', '.join(sorted(CONGESTION_CONTROLS))})"
        ) from None
    return cls(mss)
