"""Network condition profiles.

The paper emulates a DSL access link with ``tc``: 50 ms RTT, 16 Mbit/s
downlink and 1 Mbit/s uplink, no loss (§4.1).  That profile is the
*testbed*.  For Fig. 2a the paper compares against loading the same
sites over the real Internet, where RTT, bandwidth, and loss vary
between runs; :class:`InternetConditions` models that variability by
sampling a fresh :class:`NetworkConditions` per run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..units import mbit_per_s


@dataclass(frozen=True)
class NetworkConditions:
    """A fully deterministic network parameterization for one run.

    Attributes:
        rtt_ms: round-trip propagation delay between client and servers.
        downlink_bytes_per_ms: client downlink rate (shared bottleneck).
        uplink_bytes_per_ms: client uplink rate (shared bottleneck).
        loss_rate: per-segment Bernoulli loss probability.
        jitter_ms: maximum uniform extra one-way delay per segment.
        server_delay_ms: extra per-request processing delay at servers
            (the paper assumes none in the testbed; kept configurable).
    """

    rtt_ms: float = 50.0
    downlink_bytes_per_ms: float = mbit_per_s(16)
    uplink_bytes_per_ms: float = mbit_per_s(1)
    loss_rate: float = 0.0
    jitter_ms: float = 0.0
    server_delay_ms: float = 0.0

    @property
    def one_way_ms(self) -> float:
        """One-way propagation delay (half the RTT)."""
        return self.rtt_ms / 2.0

    def with_rtt(self, rtt_ms: float) -> "NetworkConditions":
        return replace(self, rtt_ms=rtt_ms)


#: The paper's emulated DSL setting (§4.1).
DSL_TESTBED = NetworkConditions()

#: A faster cable-like profile, used in some ablations.
CABLE = NetworkConditions(
    rtt_ms=20.0,
    downlink_bytes_per_ms=mbit_per_s(100),
    uplink_bytes_per_ms=mbit_per_s(10),
)

#: A cellular-like profile (higher RTT, moderate bandwidth).
CELLULAR = NetworkConditions(
    rtt_ms=100.0,
    downlink_bytes_per_ms=mbit_per_s(8),
    uplink_bytes_per_ms=mbit_per_s(2),
    jitter_ms=5.0,
)


class ConditionSampler:
    """Base class: yields one :class:`NetworkConditions` per run."""

    def sample(self, rng: random.Random) -> NetworkConditions:
        raise NotImplementedError


class FixedConditions(ConditionSampler):
    """Always returns the same conditions — the replay testbed."""

    def __init__(self, conditions: NetworkConditions = DSL_TESTBED):
        self.conditions = conditions

    def sample(self, rng: random.Random) -> NetworkConditions:
        return self.conditions


class InternetConditions(ConditionSampler):
    """Per-run variability as observed when measuring over the Internet.

    Each run samples RTT and bandwidth multiplicatively (log-normal-ish
    via ``rng.lognormvariate``), adds per-segment jitter, and a small
    loss probability.  The defaults are chosen so that the per-site
    standard error over 31 runs lands in the several-hundred-millisecond
    range the paper reports for Internet measurements, versus < 100 ms
    in the testbed (Fig. 2a).
    """

    def __init__(
        self,
        base: NetworkConditions = DSL_TESTBED,
        rtt_sigma: float = 0.35,
        bandwidth_sigma: float = 0.30,
        max_loss: float = 0.01,
        jitter_ms: float = 8.0,
        server_delay_max_ms: float = 40.0,
    ):
        self.base = base
        self.rtt_sigma = rtt_sigma
        self.bandwidth_sigma = bandwidth_sigma
        self.max_loss = max_loss
        self.jitter_ms = jitter_ms
        self.server_delay_max_ms = server_delay_max_ms

    def sample(self, rng: random.Random) -> NetworkConditions:
        rtt = self.base.rtt_ms * rng.lognormvariate(0.0, self.rtt_sigma)
        down = self.base.downlink_bytes_per_ms / rng.lognormvariate(0.0, self.bandwidth_sigma)
        up = self.base.uplink_bytes_per_ms / rng.lognormvariate(0.0, self.bandwidth_sigma)
        return NetworkConditions(
            rtt_ms=rtt,
            downlink_bytes_per_ms=down,
            uplink_bytes_per_ms=up,
            loss_rate=rng.uniform(0.0, self.max_loss),
            jitter_ms=rng.uniform(0.0, self.jitter_ms),
            server_delay_ms=rng.uniform(0.0, self.server_delay_max_ms),
        )
