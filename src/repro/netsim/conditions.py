"""Network condition profiles.

The paper emulates a DSL access link with ``tc``: 50 ms RTT, 16 Mbit/s
downlink and 1 Mbit/s uplink, no loss (§4.1).  That profile is the
*testbed*.  For Fig. 2a the paper compares against loading the same
sites over the real Internet, where RTT, bandwidth, and loss vary
between runs; :class:`InternetConditions` models that variability by
sampling a fresh :class:`NetworkConditions` per run.

Beyond the paper, conditions now carry the knobs of the impairment
subsystem: an optional per-link :class:`~repro.netsim.impairment.
ImpairmentConfig` (loss, jitter, reordering, bandwidth fading) and the
congestion-control algorithm TCP senders run (``"reno"`` or
``"cubic"``).  :data:`PROFILES` names the ready-made settings the
lossy-network experiments sweep over; :func:`profile` looks them up.

Every profile validates at construction time (via ``repro.units``
helpers) and raises :class:`repro.errors.ConfigError` on nonsensical
values — negative RTT, zero MSS, loss probabilities outside [0, 1] —
instead of silently misbehaving deep inside the simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..errors import ConfigError
from ..units import (
    mbit_per_s,
    require_choice,
    require_fraction,
    require_non_negative,
    require_positive,
)
from .impairment import (
    BandwidthVariationSpec,
    GilbertElliottLoss,
    IIDLoss,
    ImpairmentConfig,
    JitterSpec,
    ReorderSpec,
)

#: Default maximum segment size (Ethernet MTU minus IP/TCP headers);
#: mirrors ``repro.netsim.tcp.MSS``.
DEFAULT_MSS = 1460

#: Transports a page load can run over.  ``tcp`` is the paper's stack
#: (H2 over TCP+TLS); ``quic`` is the QUIC-flavored transport in
#: ``repro.netsim.quic`` (per-stream delivery, no cross-stream HoL
#: blocking, 1-RTT — or 0-RTT resumed — handshake).
TRANSPORTS = ("tcp", "quic")


@dataclass(frozen=True)
class NetworkConditions:
    """A fully deterministic network parameterization for one run.

    Attributes:
        rtt_ms: round-trip propagation delay between client and servers.
        downlink_bytes_per_ms: client downlink rate (shared bottleneck).
        uplink_bytes_per_ms: client uplink rate (shared bottleneck).
        loss_rate: per-segment Bernoulli loss probability applied at the
            TCP sender (the historical Fig. 2a "Internet" knob; the
            richer link-level models live in ``impairment``).
        jitter_ms: maximum uniform extra one-way delay per segment.
        server_delay_ms: extra per-request processing delay at servers
            (the paper assumes none in the testbed; kept configurable).
        mss: TCP maximum segment size in bytes.
        congestion_control: name of the TCP congestion controller
            (see ``repro.netsim.congestion.CONGESTION_CONTROLS``).
        impairment: optional packet-impairment pipeline configuration
            applied by both access links; ``None`` keeps the clean
            bit-identical fast path.
        transport: ``"tcp"`` (the paper's stack) or ``"quic"``
            (per-stream delivery without cross-stream HoL blocking;
            see ``repro.netsim.quic``).
        quic_0rtt: when the transport is QUIC, account connections to
            previously visited origins as 0-RTT session resumptions.
    """

    #: Immutable config; forked replay worlds share it
    #: (see repro.sim.snapshot).
    _fork_atomic = True

    rtt_ms: float = 50.0
    downlink_bytes_per_ms: float = mbit_per_s(16)
    uplink_bytes_per_ms: float = mbit_per_s(1)
    loss_rate: float = 0.0
    jitter_ms: float = 0.0
    server_delay_ms: float = 0.0
    mss: int = DEFAULT_MSS
    congestion_control: str = "reno"
    impairment: Optional[ImpairmentConfig] = None
    transport: str = "tcp"
    quic_0rtt: bool = False

    # Additive transport knobs stay out of historical cache keys: a
    # cell that runs the default TCP stack fingerprints exactly as it
    # did before these fields existed (see ``fingerprint.jsonable``).
    FINGERPRINT_NEUTRAL = {"transport": "tcp", "quic_0rtt": False}

    def __post_init__(self) -> None:
        require_non_negative("rtt_ms", self.rtt_ms)
        require_positive("downlink_bytes_per_ms", self.downlink_bytes_per_ms)
        require_positive("uplink_bytes_per_ms", self.uplink_bytes_per_ms)
        require_fraction("loss_rate", self.loss_rate)
        require_non_negative("jitter_ms", self.jitter_ms)
        require_non_negative("server_delay_ms", self.server_delay_ms)
        require_positive("mss", self.mss)
        require_choice("transport", self.transport, TRANSPORTS)
        if self.quic_0rtt and self.transport != "quic":
            raise ConfigError(
                "quic_0rtt requires transport='quic', "
                f"got transport={self.transport!r}"
            )
        from .congestion import CONGESTION_CONTROLS

        if self.congestion_control not in CONGESTION_CONTROLS:
            raise ConfigError(
                f"unknown congestion control {self.congestion_control!r} "
                f"(available: {', '.join(sorted(CONGESTION_CONTROLS))})"
            )

    @property
    def one_way_ms(self) -> float:
        """One-way propagation delay (half the RTT)."""
        return self.rtt_ms / 2.0

    def with_rtt(self, rtt_ms: float) -> "NetworkConditions":
        return replace(self, rtt_ms=rtt_ms)

    def with_impairment(self, impairment: Optional[ImpairmentConfig]) -> "NetworkConditions":
        return replace(self, impairment=impairment)

    def with_congestion_control(self, name: str) -> "NetworkConditions":
        return replace(self, congestion_control=name)

    def with_transport(self, name: str, quic_0rtt: bool = False) -> "NetworkConditions":
        return replace(self, transport=name, quic_0rtt=quic_0rtt)


#: The paper's emulated DSL setting (§4.1).
DSL_TESTBED = NetworkConditions()

#: Alias making the clean/lossy contrast explicit at call sites.
CLEAN_DSL = DSL_TESTBED

#: A faster cable-like profile, used in some ablations.
CABLE = NetworkConditions(
    rtt_ms=20.0,
    downlink_bytes_per_ms=mbit_per_s(100),
    uplink_bytes_per_ms=mbit_per_s(10),
)

#: A cellular-like profile (higher RTT, moderate bandwidth).
CELLULAR = NetworkConditions(
    rtt_ms=100.0,
    downlink_bytes_per_ms=mbit_per_s(8),
    uplink_bytes_per_ms=mbit_per_s(2),
    jitter_ms=5.0,
)

#: The paper's DSL link suffering bursty last-mile loss (a noisy line):
#: ~1% stationary loss in short bursts, mild jitter and reordering.
LOSSY_DSL = NetworkConditions(
    impairment=ImpairmentConfig(
        loss=GilbertElliottLoss(p_enter_bad=0.004, p_exit_bad=0.30, bad_loss=0.75),
        jitter=JitterSpec(max_ms=2.0),
        reorder=ReorderSpec(rate=0.005, extra_delay_ms=10.0),
    ),
)

#: 3G-like cellular: high RTT, narrow and unstable link, burst loss.
CELLULAR_3G = NetworkConditions(
    rtt_ms=150.0,
    downlink_bytes_per_ms=mbit_per_s(3),
    uplink_bytes_per_ms=mbit_per_s(1),
    congestion_control="cubic",
    impairment=ImpairmentConfig(
        loss=GilbertElliottLoss(p_enter_bad=0.008, p_exit_bad=0.25, bad_loss=0.8),
        jitter=JitterSpec(max_ms=15.0),
        reorder=ReorderSpec(rate=0.01, extra_delay_ms=30.0),
        bandwidth=BandwidthVariationSpec(amplitude=0.4, interval_ms=500.0),
    ),
)

#: LTE-like cellular: moderate RTT, fast but fading link, light loss.
CELLULAR_LTE = NetworkConditions(
    rtt_ms=70.0,
    downlink_bytes_per_ms=mbit_per_s(20),
    uplink_bytes_per_ms=mbit_per_s(8),
    congestion_control="cubic",
    impairment=ImpairmentConfig(
        loss=IIDLoss(rate=0.002),
        jitter=JitterSpec(max_ms=8.0),
        bandwidth=BandwidthVariationSpec(amplitude=0.25, interval_ms=250.0),
    ),
)

#: Fiber-to-the-home: short RTT, wide clean pipe.
FIBER = NetworkConditions(
    rtt_ms=10.0,
    downlink_bytes_per_ms=mbit_per_s(300),
    uplink_bytes_per_ms=mbit_per_s(100),
)

#: Named profiles selectable from experiment configs and the CLI.
PROFILES: Dict[str, NetworkConditions] = {
    "clean_dsl": CLEAN_DSL,
    "lossy_dsl": LOSSY_DSL,
    "cable": CABLE,
    "cellular": CELLULAR,
    "cellular_3g": CELLULAR_3G,
    "cellular_lte": CELLULAR_LTE,
    "fiber": FIBER,
}


def profile(name: str) -> NetworkConditions:
    """Look up a named condition profile; raises ``ConfigError``."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown network profile {name!r} "
            f"(available: {', '.join(sorted(PROFILES))})"
        ) from None


class ConditionSampler:
    """Base class: yields one :class:`NetworkConditions` per run."""

    def sample(self, rng: random.Random) -> NetworkConditions:
        raise NotImplementedError


class FixedConditions(ConditionSampler):
    """Always returns the same conditions — the replay testbed."""

    def __init__(self, conditions: NetworkConditions = DSL_TESTBED):
        self.conditions = conditions

    def sample(self, rng: random.Random) -> NetworkConditions:
        return self.conditions


class InternetConditions(ConditionSampler):
    """Per-run variability as observed when measuring over the Internet.

    Each run samples RTT and bandwidth multiplicatively (log-normal-ish
    via ``rng.lognormvariate``), adds per-segment jitter, and a small
    loss probability.  The defaults are chosen so that the per-site
    standard error over 31 runs lands in the several-hundred-millisecond
    range the paper reports for Internet measurements, versus < 100 ms
    in the testbed (Fig. 2a).
    """

    def __init__(
        self,
        base: NetworkConditions = DSL_TESTBED,
        rtt_sigma: float = 0.35,
        bandwidth_sigma: float = 0.30,
        max_loss: float = 0.01,
        jitter_ms: float = 8.0,
        server_delay_max_ms: float = 40.0,
    ):
        self.base = base
        self.rtt_sigma = rtt_sigma
        self.bandwidth_sigma = bandwidth_sigma
        self.max_loss = max_loss
        self.jitter_ms = jitter_ms
        self.server_delay_max_ms = server_delay_max_ms

    def sample(self, rng: random.Random) -> NetworkConditions:
        rtt = self.base.rtt_ms * rng.lognormvariate(0.0, self.rtt_sigma)
        down = self.base.downlink_bytes_per_ms / rng.lognormvariate(0.0, self.bandwidth_sigma)
        up = self.base.uplink_bytes_per_ms / rng.lognormvariate(0.0, self.bandwidth_sigma)
        return NetworkConditions(
            rtt_ms=rtt,
            downlink_bytes_per_ms=down,
            uplink_bytes_per_ms=up,
            loss_rate=rng.uniform(0.0, self.max_loss),
            jitter_ms=rng.uniform(0.0, self.jitter_ms),
            server_delay_ms=rng.uniform(0.0, self.server_delay_max_ms),
        )
