"""Connection-establishment latency model (DNS + TCP + TLS).

The paper measures PLT from the W3C ``connectEnd`` event, i.e. after
DNS, TCP, and TLS for the *initial* connection have completed (§2.2).
Connections to additional origins, however, are opened during the page
load and their setup cost lands inside the measured interval — one of
the reasons third-party resources hurt and connection coalescing
matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import require_non_negative
from .conditions import NetworkConditions


@dataclass(frozen=True)
class HandshakeModel:
    """Round-trip counts for each setup phase.

    Defaults model DNS over UDP (1 RTT to a resolver assumed at the
    access-link latency), a TCP three-way handshake (1 RTT before data
    can flow), and a TLS 1.2 full handshake (2 RTTs), matching the
    stack deployed at the time of the paper (Chromium 64 / h2o, 2018).

    QUIC collapses transport and crypto setup into one exchange: the
    1-RTT model books the combined handshake under ``tls_rtts`` with
    ``tcp_rtts=0``, and the 0-RTT resumption model books no setup
    round trips at all (data rides the first flight).
    """

    dns_rtts: float = 1.0
    tcp_rtts: float = 1.0
    tls_rtts: float = 2.0

    def __post_init__(self) -> None:
        require_non_negative("dns_rtts", self.dns_rtts)
        require_non_negative("tcp_rtts", self.tcp_rtts)
        require_non_negative("tls_rtts", self.tls_rtts)

    def dns_ms(self, conditions: NetworkConditions, cached: bool) -> float:
        if cached:
            return 0.0
        return self.dns_rtts * conditions.rtt_ms

    def connect_ms(self, conditions: NetworkConditions, dns_cached: bool) -> float:
        """Total delay from ``connectStart`` to ``connectEnd``."""
        transport = (self.tcp_rtts + self.tls_rtts) * conditions.rtt_ms
        return self.dns_ms(conditions, dns_cached) + transport


#: TLS 1.2 era model used for all paper experiments.
TLS12_HANDSHAKE = HandshakeModel()

#: TLS 1.3 model (1-RTT handshake), available for ablations.
TLS13_HANDSHAKE = HandshakeModel(tls_rtts=1.0)

#: QUIC 1-RTT: transport + crypto complete in a single exchange.
QUIC_HANDSHAKE = HandshakeModel(tcp_rtts=0.0, tls_rtts=1.0)

#: QUIC 0-RTT resumption: request data rides the first flight.
QUIC_0RTT_HANDSHAKE = HandshakeModel(tcp_rtts=0.0, tls_rtts=0.0)
