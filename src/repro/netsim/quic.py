"""A QUIC-flavored multiplexed transport.

The model captures the two transport-level differences that motivated
QUIC as a successor to H2-over-TCP, while deliberately sharing every
other mechanism with :mod:`repro.netsim.tcp` so that experiment
contrasts isolate exactly those differences:

* **No cross-stream head-of-line blocking.**  Data is carried in
  per-stream frames with per-stream offsets; a receiver delivers each
  stream's bytes as soon as they are contiguous *within that stream*.
  A packet lost on stream 5 stalls only stream 5 — TCP's single
  sequence space would stall every multiplexed stream behind the hole.
* **Packet-number loss recovery** (RFC 9002-style).  Every
  transmission — including a retransmission — gets a fresh packet
  number, so RTT samples are never ambiguous (Karn's rule is
  unnecessary by construction).  Loss is detected by packet threshold
  (a packet is lost once three higher-numbered packets are
  acknowledged, mirroring TCP's three duplicate ACKs) and by a
  per-packet timer with exponential backoff (the PTO, mirroring the
  RTO path).  Lost frames are retransmitted in fresh packets.

Everything else is shared with the TCP model on purpose: the pluggable
congestion controllers (``repro.netsim.congestion``), the RFC 6298
smoothed RTT estimator, delayed ACKs (every 2nd packet / 5 ms), the
16 KiB bounded send buffer that backpressures the HTTP/2 scheduler,
sender-side Bernoulli loss, and the shared-link impairment pipeline
(loss/jitter/reorder/fading apply to QUIC packets exactly as they do
to TCP segments).  Per-packet wire overhead is charged at the TCP
figure so bandwidth-bound comparisons are apples to apples.

Handshake accounting (1-RTT, or 0-RTT resumption) lives in
:mod:`repro.netsim.handshake`; the topology applies it before the
connection object exists, exactly as for TCP.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..errors import NetworkError
from ..sim import Simulator
from .conditions import NetworkConditions
from .congestion import make_congestion_control
from .link import SharedLink
from .tcp import (
    ACK_SIZE,
    DEFAULT_SEND_BUFFER,
    DELAYED_ACK_SEGMENTS,
    DELAYED_ACK_TIMEOUT_MS,
    HEADER_OVERHEAD,
)

#: Packets whose number trails the largest acknowledged by this many
#: are declared lost (RFC 9002 §6.1.1 packet threshold; the analogue
#: of TCP's three duplicate ACKs).
PACKET_THRESHOLD = 3

#: The control stream: HTTP/2 framing (preface, SETTINGS, HEADERS,
#: PUSH_PROMISE, WINDOW_UPDATE...) rides it as an ordered byte stream.
CONTROL_STREAM = 0


class QuicEndpoint:
    """One side of an established QUIC connection.

    Mirrors :class:`~repro.netsim.tcp.TcpEndpoint` — ``send`` writes
    the ordered control stream (stream 0) and ``on_data`` receives it,
    so byte-stream consumers work unchanged — and adds the stream
    plane: ``send_stream`` writes one resource stream and
    ``on_stream_data`` receives per-stream payloads the moment they
    are contiguous within their stream.
    """

    def __init__(self, half_out: "_QuicHalf", half_in: "_QuicHalf", name: str):
        self._out = half_out
        self._in = half_in
        self.name = name
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_stream_data: Optional[Callable[[int, bytes, bool], None]] = None
        self.on_writable: Optional[Callable[[], None]] = None
        half_out.endpoint = self
        half_in.receiver_endpoint = self

    def send(self, data: bytes) -> int:
        """Buffer control-stream bytes; returns the count accepted."""
        return self._out.enqueue(data)

    def send_stream(self, stream_id: int, data: bytes, fin: bool = False) -> int:
        """Buffer bytes for one resource stream (``fin`` closes it)."""
        return self._out.enqueue_stream(stream_id, data, fin)

    @property
    def send_buffer_space(self) -> int:
        out = self._out
        space = out._max_buffer - out._buffered
        return space if space > 0 else 0

    @property
    def bytes_sent(self) -> int:
        return self._out.bytes_enqueued

    @property
    def bytes_received(self) -> int:
        return self._in.bytes_delivered

    @property
    def congestion_window(self) -> float:
        return self._out._cc.cwnd

    @property
    def unsent_buffered(self) -> int:
        return self._out._buffered

    @property
    def in_flight_bytes(self) -> int:
        return self._out._flight_bytes

    @property
    def all_sent_delivered(self) -> bool:
        return self._out.fully_acked


class _QuicHalf:
    """Sender + receiver state for one direction of a connection."""

    def __init__(
        self,
        sim: Simulator,
        data_link: SharedLink,
        ack_link: SharedLink,
        conditions: NetworkConditions,
        rng: random.Random,
        name: str,
        tracer=None,
    ):
        self._sim = sim
        self._data_link = data_link
        self._ack_link = ack_link
        self._conditions = conditions
        self._rng = rng
        self.name = name
        self._tracer = tracer
        self.endpoint: Optional[QuicEndpoint] = None
        self.receiver_endpoint: Optional[QuicEndpoint] = None

        # --- sender state ---
        #: FIFO of pending stream writes: [stream_id, payload, fin].
        #: FIFO across streams keeps the HTTP/2 scheduler in charge of
        #: interleaving, exactly as it is over TCP's single stream.
        self._buffer: Deque[list] = deque()
        self._buffered = 0
        self._max_buffer = DEFAULT_SEND_BUFFER
        self._mss = conditions.mss
        self._cc = make_congestion_control(conditions.congestion_control, conditions.mss)
        self._next_pn = 0
        self._largest_acked = -1
        #: Per-stream next send offset.
        self._send_offsets: Dict[int, int] = {}
        #: pn -> [stream_id, offset, payload, fin, timer, sent_at].
        self._in_flight: Dict[int, list] = {}
        self._flight_bytes = 0
        self._rto_lane = sim.timer_lane()
        self._was_full = False
        self.bytes_enqueued = 0
        # RFC 6298 estimator, shared verbatim with the TCP model; with
        # unique packet numbers every ACKed packet is a valid sample.
        self._srtt: float = 0.0
        self._rttvar: float = 0.0
        self._rto = 1_000.0

        # --- receiver state ---
        #: Every packet number <= floor has been received.
        self._rcv_floor = -1
        self._rcv_above: set = set()
        #: stream_id -> [next_offset, {offset: (payload, fin)}].
        self._streams: Dict[int, list] = {}
        self.bytes_delivered = 0
        self._packets_since_ack = 0
        self._ack_timer = sim.timer_lane().timer(self._send_ack_now)

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    @property
    def buffer_space(self) -> int:
        space = self._max_buffer - self._buffered
        return space if space > 0 else 0

    @property
    def fully_acked(self) -> bool:
        return self._buffered == 0 and not self._in_flight

    def enqueue(self, data: bytes) -> int:
        """Write control-stream bytes (partial accept on a full buffer)."""
        return self.enqueue_stream(CONTROL_STREAM, data, False)

    def enqueue_stream(self, stream_id: int, data: bytes, fin: bool) -> int:
        size = len(data)
        space = self._max_buffer - self._buffered
        accepted = size if size < space else (space if space > 0 else 0)
        if accepted > 0 or (fin and accepted == size):
            # A fin with no remaining payload still needs a record: an
            # empty frame carries the stream-closing flag on the wire.
            self._buffer.append(
                [stream_id, data if accepted == size else data[:accepted], fin and accepted == size]
            )
            self._buffered += accepted
            self.bytes_enqueued += accepted
            self._pump()
        if accepted < size:
            self._was_full = True
        return accepted

    def _pump(self) -> None:
        """Packetize pending stream writes while the window allows."""
        cc = self._cc
        mss = self._mss
        buffer = self._buffer
        while buffer:
            head = buffer[0]
            payload = head[1]
            if len(payload) > 0 and self._flight_bytes >= cc.cwnd:
                return
            if len(payload) > mss:
                if not isinstance(payload, memoryview):
                    payload = memoryview(payload)
                chunk = bytes(payload[:mss])
                head[1] = payload[mss:]
                fin = False  # the fin travels with the remainder
            else:
                buffer.popleft()
                chunk = bytes(payload) if isinstance(payload, memoryview) else payload
                fin = head[2]
            stream_id = head[0]
            offset = self._send_offsets.get(stream_id, 0)
            self._send_offsets[stream_id] = offset + len(chunk)
            self._buffered -= len(chunk)
            self._transmit(stream_id, offset, chunk, fin, retransmission=False)

    def _transmit(
        self, stream_id: int, offset: int, payload: bytes, fin: bool, retransmission: bool
    ) -> None:
        pn = self._next_pn
        self._next_pn = pn + 1
        timer = self._rto_lane.schedule(self._rto, self._on_timeout, pn)
        self._in_flight[pn] = [stream_id, offset, payload, fin, timer, self._sim.now]
        self._flight_bytes += len(payload)
        if self._conditions.loss_rate > 0 and self._rng.random() < self._conditions.loss_rate:
            # Lost on the wire; the PTO (or packet-threshold detection
            # triggered by later packets) recovers the frame.
            return
        size = len(payload) + HEADER_OVERHEAD
        self._data_link.transmit(
            size, self._on_packet_arrival, pn, (stream_id, offset, payload, fin)
        )

    def _sample_rtt(self, rtt: float) -> None:
        """RFC 6298 smoothed RTT / RTO update (see ``tcp._sample_rtt``)."""
        if self._srtt == 0.0:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt
        self._rto = min(max(self._srtt + max(4.0 * self._rttvar, 10.0), 200.0), 60_000.0)

    def _retransmit(self, entry: list, kind: str, pn: int) -> None:
        """Re-send one lost frame in a fresh packet (new packet number)."""
        stream_id, offset, payload, fin, _timer, _sent_at = entry
        if self._tracer is not None:
            self._tracer.retransmit(self.name, pn, kind)
        self._transmit(stream_id, offset, payload, fin, retransmission=True)

    def _on_timeout(self, pn: int) -> None:
        entry = self._in_flight.pop(pn, None)
        if entry is None:
            return
        self._flight_bytes -= len(entry[2])
        self._cc.on_timeout(self._sim.now)
        self._rto = min(self._rto * 2.0, 60_000.0)  # exponential backoff
        if self._tracer is not None:
            self._cc.trace_sample(
                self._tracer, self.name, "timeout", self._rto, self._flight_bytes
            )
        self._retransmit(entry, "rto", pn)

    def _on_ack_arrival(self, floor: int, above: tuple) -> None:
        """Process one cumulative-plus-ranges ACK at the sender."""
        in_flight = self._in_flight
        above_set = set(above)
        largest = floor if not above else max(floor, above[-1])
        if largest > self._largest_acked:
            self._largest_acked = largest
        newly_acked = 0
        acked_pns = [
            pn for pn in in_flight if pn <= floor or pn in above_set
        ]
        now = self._sim.now
        for pn in acked_pns:
            _sid, _offset, payload, _fin, timer, sent_at = in_flight.pop(pn)
            timer.cancel()
            self._flight_bytes -= len(payload)
            newly_acked += len(payload)
            self._sample_rtt(now - sent_at)
        # Packet-threshold loss detection (RFC 9002): anything still in
        # flight that the ACK skipped by >= PACKET_THRESHOLD is lost.
        lost_pns = [
            pn for pn in in_flight if pn + PACKET_THRESHOLD <= self._largest_acked
        ]
        if newly_acked > 0:
            self._cc.on_ack(newly_acked, now)
        if lost_pns:
            # One congestion response per loss event (per ACK round),
            # mirroring TCP fast retransmit, not one per packet.
            self._cc.on_fast_retransmit(now)
            if self._tracer is not None:
                self._cc.trace_sample(
                    self._tracer, self.name, "fast_retransmit", self._rto, self._flight_bytes
                )
            for pn in lost_pns:
                entry = in_flight.pop(pn)
                entry[4].cancel()
                self._flight_bytes -= len(entry[2])
                self._retransmit(entry, "fast", pn)
        elif newly_acked > 0 and self._tracer is not None:
            self._cc.trace_sample(
                self._tracer, self.name, "ack", self._rto, self._flight_bytes
            )
        self._pump()
        if self._buffered < self._max_buffer:
            self._was_full = False
            if self.endpoint is not None and self.endpoint.on_writable is not None:
                self.endpoint.on_writable()

    # ------------------------------------------------------------------
    # receiver side (runs at the *other* host; links already added delay)
    # ------------------------------------------------------------------
    def _on_packet_arrival(self, pn: int, frame: tuple) -> None:
        duplicate = pn <= self._rcv_floor or pn in self._rcv_above
        gap_before = bool(self._rcv_above)
        if not duplicate:
            if pn == self._rcv_floor + 1:
                self._rcv_floor = pn
                above = self._rcv_above
                while self._rcv_floor + 1 in above:
                    self._rcv_floor += 1
                    above.discard(self._rcv_floor)
            else:
                self._rcv_above.add(pn)
            self._deliver_frame(frame)
        if self._rcv_above or (duplicate and not gap_before):
            # A hole in the packet-number space (or a spurious
            # duplicate): ACK immediately so loss detection at the
            # sender sees the skip without waiting out the ACK delay —
            # the analogue of TCP's immediate duplicate ACK.
            self._send_ack_now()
            return
        self._packets_since_ack += 1
        if self._packets_since_ack >= DELAYED_ACK_SEGMENTS:
            self._send_ack_now()
        elif not self._ack_timer.armed:
            self._ack_timer.start(DELAYED_ACK_TIMEOUT_MS)

    def _deliver_frame(self, frame: tuple) -> None:
        stream_id, offset, payload, fin = frame
        state = self._streams.get(stream_id)
        if state is None:
            state = [0, {}]
            self._streams[stream_id] = state
        next_offset, pending = state
        if offset > next_offset:
            # A hole earlier in *this* stream; buffer until it fills.
            # Other streams keep delivering — the HoL-blocking contrast
            # with TCP's single sequence space.
            pending[offset] = (payload, fin)
            return
        if offset < next_offset or (offset in pending):
            return  # spuriously retransmitted frame, already have it
        self._deliver(stream_id, payload, fin)
        next_offset = offset + len(payload)
        recovered = 0
        while next_offset in pending:
            chunk, chunk_fin = pending.pop(next_offset)
            self._deliver(stream_id, chunk, chunk_fin)
            recovered += len(chunk)
            next_offset += len(chunk)
        state[0] = next_offset
        if recovered > 0 and self._tracer is not None:
            # This frame filled a gap that had later bytes parked
            # behind it: a stream-level loss recovery.
            self._tracer.quic_stream_recovered(self.name, stream_id, recovered)

    def _deliver(self, stream_id: int, payload: bytes, fin: bool) -> None:
        self.bytes_delivered += len(payload)
        receiver = self.receiver_endpoint
        if receiver is None:
            return
        if stream_id == CONTROL_STREAM:
            if payload and receiver.on_data is not None:
                receiver.on_data(payload)
        elif receiver.on_stream_data is not None:
            receiver.on_stream_data(stream_id, payload, fin)

    def _send_ack_now(self) -> None:
        self._ack_timer.cancel()
        self._packets_since_ack = 0
        self._ack_link.transmit(
            ACK_SIZE, self._on_ack_arrival, self._rcv_floor, tuple(sorted(self._rcv_above))
        )


class QuicConnection:
    """A full-duplex QUIC connection between a client and a server.

    Mirrors :class:`~repro.netsim.tcp.TcpConnection`: both directions
    share the topology's access links, with ACKs riding the reverse
    link.  The ``transport`` attribute lets protocol layers pick the
    matching framing adapter.
    """

    transport = "quic"

    def __init__(
        self,
        sim: Simulator,
        downlink: SharedLink,
        uplink: SharedLink,
        conditions: NetworkConditions,
        rng: Optional[random.Random] = None,
        name: str = "quic",
        tracer=None,
    ):
        rng = rng or random.Random(0)
        self.name = name
        self._c2s = _QuicHalf(
            sim, uplink, downlink, conditions, rng, f"{name}:c2s", tracer=tracer
        )
        self._s2c = _QuicHalf(
            sim, downlink, uplink, conditions, rng, f"{name}:s2c", tracer=tracer
        )
        self.client = QuicEndpoint(self._c2s, self._s2c, f"{name}:client")
        self.server = QuicEndpoint(self._s2c, self._c2s, f"{name}:server")

    def set_send_buffer(self, size: int) -> None:
        """Set the send-buffer size for both directions."""
        mss = self._c2s._mss
        if size < mss:
            raise NetworkError(f"send buffer must hold at least one MSS ({mss})")
        self._c2s._max_buffer = size
        self._s2c._max_buffer = size
