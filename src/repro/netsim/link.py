"""Shared bottleneck links.

A :class:`SharedLink` models the serialization point of the client's
access link (``tc``'s token bucket in the paper's testbed).  All TCP
connections of a page load share the same two links — this is what
creates the bandwidth contention between pushed streams and the base
document that the paper observes (e.g. for w10, §5).
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..sim import Simulator
from ..sim.events import _NO_ARG
from .impairment import ImpairmentPipeline


class SharedLink:
    """A FIFO transmission queue with a fixed rate and propagation delay.

    ``transmit`` serializes payloads in arrival order at ``rate`` bytes
    per millisecond, then applies the propagation delay (plus optional
    uniform jitter) before invoking the delivery callback.  Because the
    queue is work-conserving and FIFO, concurrent connections naturally
    share the bottleneck.

    An optional :class:`ImpairmentPipeline` composes loss, jitter,
    reordering, and bandwidth fading onto the link: drops consume link
    time but are never delivered (egress loss, as netem applies it),
    and per-packet extra delay can make later packets overtake earlier
    ones.  Without a pipeline the historical clean path runs unchanged.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bytes_per_ms: float,
        propagation_ms: float,
        jitter_ms: float = 0.0,
        rng: Optional[random.Random] = None,
        name: str = "link",
        impairments: Optional[ImpairmentPipeline] = None,
    ):
        if rate_bytes_per_ms <= 0:
            raise ValueError("link rate must be positive")
        if propagation_ms < 0:
            raise ValueError("propagation delay must be non-negative")
        self._sim = sim
        self._rate = rate_bytes_per_ms
        self._propagation = propagation_ms
        self._jitter = jitter_ms
        self._rng = rng or random.Random(0)
        self.name = name
        self._impairments = impairments
        self._busy_until = 0.0
        self.bytes_transmitted = 0
        #: Per-link delivery lane: clean-link arrivals are monotone
        #: (FIFO serialization + constant propagation), so deliveries
        #: bypass the simulator heap; jitter/impairment reordering
        #: falls back to the heap per event inside the lane.
        self._deliver_lane = sim.timer_lane()

    @property
    def rate(self) -> float:
        return self._rate

    @property
    def propagation_ms(self) -> float:
        return self._propagation

    @property
    def impairments(self) -> Optional[ImpairmentPipeline]:
        return self._impairments

    @property
    def queue_delay_ms(self) -> float:
        """Current queueing delay a new arrival would experience."""
        return max(0.0, self._busy_until - self._sim.now)

    def transmit(self, size: int, deliver: Callable, arg1=_NO_ARG, arg2=_NO_ARG) -> float:
        """Enqueue ``size`` bytes; call ``deliver`` when they arrive.

        Up to two arguments may be carried inline for the delivery
        callback (``deliver(arg1, arg2)``), which lets per-segment hot
        paths avoid allocating a closure per packet.

        Returns the absolute simulated arrival time.
        """
        if size <= 0:
            raise ValueError("transmit size must be positive")
        now = self._sim.now
        busy = self._busy_until
        start = now if now > busy else busy
        impairments = self._impairments
        if impairments is None:
            finish = start + size / self._rate
        else:
            finish = start + size / (self._rate * impairments.rate_multiplier(now))
        self._busy_until = finish
        self.bytes_transmitted += size
        delay = self._propagation
        if self._jitter > 0:
            delay += self._rng.uniform(0.0, self._jitter)
        if impairments is not None:
            dropped, extra = impairments.packet_fate(now)
            if dropped:
                # The packet occupied the link but never arrives; the
                # sender's loss recovery (RTO / dup ACKs) repairs it.
                return finish + delay
            delay += extra
        arrival = finish + delay
        self._deliver_lane.schedule_call_abs(arrival, deliver, arg1, arg2)
        return arrival

    def reset_counters(self) -> None:
        self.bytes_transmitted = 0
