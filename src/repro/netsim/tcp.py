"""A byte-stream TCP model.

The model captures the TCP dynamics the paper's findings depend on:

* **IW10 slow start** — a large base document needs multiple round
  trips (the mechanism behind sites s8 and w1 in the paper);
* **ack clocking over an asymmetric link** — ACKs consume the 1 Mbit/s
  uplink;
* **a bounded send buffer with backpressure** — the HTTP/2 server can
  only decide *what to send next* when socket space frees, which is
  what makes stream (re)scheduling and Interleaving Push meaningful;
* **loss recovery** — adaptive RTO with exponential backoff (RFC 6298)
  and fast retransmit on three duplicate ACKs (RFC 5681), exercised by
  the Fig. 2a "Internet" profile and by the link-level impairment
  pipeline (``repro.netsim.impairment``);
* **pluggable congestion control** — the send window is driven by a
  policy object (``repro.netsim.congestion``: Reno or CUBIC) selected
  via ``NetworkConditions.congestion_control``.

The receiver tolerates whatever an impaired link produces: duplicated
segments are re-ACKed, reordered segments are buffered until the hole
fills, and stale/duplicate cumulative ACKs on the return path are
classified explicitly (see ``_on_ack``).

It is deliberately not a full TCP: no SACK, no Nagle, no window
scaling negotiation.  The replay testbed runs loss-free, where this
model is exact up to those omissions.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from ..errors import NetworkError
from ..sim import EventHandle, Simulator
from .conditions import NetworkConditions
from .congestion import make_congestion_control
from .link import SharedLink

#: Maximum segment size (Ethernet MTU minus IP/TCP headers).
MSS = 1460

#: Per-segment header overhead charged on the wire (IP + TCP).
HEADER_OVERHEAD = 40

#: Size charged for a pure ACK segment.
ACK_SIZE = 40

#: Initial congestion window, in segments (RFC 6928).
INITIAL_WINDOW_SEGMENTS = 10

#: Default socket send-buffer size; the backpressure horizon.
DEFAULT_SEND_BUFFER = 16 * 1024

#: Delayed-ACK: acknowledge every Nth segment or after the timer fires.
DELAYED_ACK_SEGMENTS = 2
DELAYED_ACK_TIMEOUT_MS = 5.0


class TcpEndpoint:
    """One side of an established TCP connection.

    Attributes:
        on_data: callback invoked with in-order received bytes.
        on_writable: callback invoked when send-buffer space frees after
            having been full.  Consumers should write until ``send``
            accepts less than offered.
    """

    def __init__(self, half_out: "_HalfConnection", half_in: "_HalfConnection", name: str):
        self._out = half_out
        self._in = half_in
        self.name = name
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_writable: Optional[Callable[[], None]] = None
        half_out.endpoint = self
        half_in.receiver_endpoint = self

    def send(self, data: bytes) -> int:
        """Buffer up to ``len(data)`` bytes for transmission.

        Returns the number of bytes accepted (may be less than offered
        when the send buffer is full — the caller must wait for
        ``on_writable``).
        """
        return self._out.enqueue(data)

    @property
    def send_buffer_space(self) -> int:
        """Bytes that a call to :meth:`send` would currently accept."""
        out = self._out
        space = out._max_buffer - out._buffered
        return space if space > 0 else 0

    @property
    def bytes_sent(self) -> int:
        return self._out.bytes_enqueued

    @property
    def bytes_received(self) -> int:
        return self._in.bytes_delivered

    @property
    def congestion_window(self) -> float:
        """Current congestion window of the outgoing direction, bytes."""
        return self._out._cc.cwnd

    @property
    def unsent_buffered(self) -> int:
        """Bytes accepted by :meth:`send` but not yet put on the wire.

        The application-visible backlog: HTTP/2 pacing keeps this small
        relative to the congestion window so scheduling decisions stay
        responsive when loss collapses the window.
        """
        return self._out._buffered

    @property
    def in_flight_bytes(self) -> int:
        """Bytes transmitted but not yet cumulatively acknowledged."""
        return self._out._flight_size()

    @property
    def all_sent_delivered(self) -> bool:
        """True when every byte ever accepted has been ACKed."""
        return self._out.fully_acked


class _HalfConnection:
    """Sender + receiver state for one direction of a connection."""

    def __init__(
        self,
        sim: Simulator,
        data_link: SharedLink,
        ack_link: SharedLink,
        conditions: NetworkConditions,
        rng: random.Random,
        name: str,
        tracer=None,
    ):
        self._sim = sim
        self._data_link = data_link
        self._ack_link = ack_link
        self._conditions = conditions
        self._rng = rng
        self.name = name
        #: Optional event tracer; read-only observer of cwnd/RTO/loss
        #: recovery decisions (``None`` costs one check per cc event).
        self._tracer = tracer
        self.endpoint: Optional[TcpEndpoint] = None
        self.receiver_endpoint: Optional[TcpEndpoint] = None

        # --- sender state ---
        self._buffer: Deque[Union[bytes, memoryview]] = deque()
        self._buffered = 0
        self._max_buffer = DEFAULT_SEND_BUFFER
        self._next_seq = 0            # next byte sequence to assign
        self._snd_una = 0             # lowest unacknowledged byte
        self._mss = conditions.mss
        # Congestion control policy (Reno reproduces the historical
        # inline window arithmetic bit for bit; see netsim.congestion).
        self._cc = make_congestion_control(conditions.congestion_control, conditions.mss)
        #: seq -> (payload, rto handle, send time, was retransmitted,
        #: end seq) — the end is precomputed so the per-ACK scan does
        #: not call ``len`` on every in-flight payload.
        self._in_flight: Dict[int, Tuple[bytes, EventHandle, float, bool, int]] = {}
        #: While no retransmission has occurred, ``_in_flight`` insertion
        #: order equals sequence order, so the per-ACK scan can stop at
        #: the first unacked entry instead of filtering the whole dict.
        #: Any retransmission re-inserts out of order and permanently
        #: drops back to the exhaustive (historical) scan.
        self._ordered = True
        #: Dedicated timer lanes: RTO deadlines (now + rto) and delayed
        #: ACK deadlines (now + 5ms) are each near-monotone within their
        #: class, so arming/cancelling bypasses the main event heap on
        #: the fastcore (the oracle shim schedules on its heap).
        self._rto_lane = sim.timer_lane()
        self._was_full = False
        self.bytes_enqueued = 0
        # RFC 6298 adaptive retransmission timeout.  A fixed RTO melts
        # down when many connections share the uplink: ACK queueing
        # inflates the RTT past the timer and every segment is spuriously
        # retransmitted.
        self._srtt: float = 0.0
        self._rttvar: float = 0.0
        self._rto = 1_000.0  # conservative until the first RTT sample
        # Fast retransmit (RFC 5681): three duplicate ACKs signal a
        # hole; recover without waiting out the RTO.
        self._dup_acks = 0

        # --- receiver state ---
        self._rcv_next = 0
        self._reorder: Dict[int, bytes] = {}
        self.bytes_delivered = 0
        self._segments_since_ack = 0
        self._ack_timer = sim.timer_lane().timer(self._send_ack_now)

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    @property
    def buffer_space(self) -> int:
        space = self._max_buffer - self._buffered
        return space if space > 0 else 0

    @property
    def fully_acked(self) -> bool:
        return self._buffered == 0 and not self._in_flight

    def enqueue(self, data: bytes) -> int:
        size = len(data)
        space = self._max_buffer - self._buffered
        accepted = size if size < space else (space if space > 0 else 0)
        if accepted > 0:
            self._buffer.append(data if accepted == size else data[:accepted])
            self._buffered += accepted
            self.bytes_enqueued += accepted
            self._pump()
        if accepted < size:
            self._was_full = True
        return accepted

    def _flight_size(self) -> int:
        return self._next_seq - self._snd_una

    def _pump(self) -> None:
        """Transmit segments while the congestion window allows."""
        cc = self._cc
        mss = self._mss
        while self._buffered > 0 and self._next_seq - self._snd_una < cc.cwnd:
            buffered = self._buffered
            payload = self._take(mss if mss < buffered else buffered)
            seq = self._next_seq
            self._next_seq = seq + len(payload)
            self._transmit(seq, payload, retransmission=False)

    def _take(self, size: int) -> bytes:
        """Dequeue ``size`` bytes; memoryview splits avoid copying the
        tail of a large write on every MSS-sized segmentation step."""
        buffer = self._buffer
        chunks: List[Union[bytes, memoryview]] = []
        remaining = size
        while remaining > 0:
            head = buffer[0]
            if len(head) <= remaining:
                chunks.append(head)
                remaining -= len(head)
                buffer.popleft()
            else:
                if not isinstance(head, memoryview):
                    head = memoryview(head)
                chunks.append(head[:remaining])
                buffer[0] = head[remaining:]
                remaining = 0
        self._buffered -= size
        if len(chunks) == 1 and type(chunks[0]) is bytes:
            return chunks[0]
        return b"".join(chunks)

    def _transmit(self, seq: int, payload: bytes, retransmission: bool) -> None:
        rto = self._rto_lane.schedule(self._rto, self._on_timeout, seq)
        self._in_flight[seq] = (payload, rto, self._sim.now, retransmission, seq + len(payload))
        if retransmission:
            self._ordered = False
        if self._conditions.loss_rate > 0 and self._rng.random() < self._conditions.loss_rate:
            # The segment is lost on the wire; the RTO timer recovers it.
            return
        size = len(payload) + HEADER_OVERHEAD
        self._data_link.transmit(size, self._on_segment_arrival, seq, payload)

    def _sample_rtt(self, rtt: float) -> None:
        """RFC 6298 smoothed RTT / RTO update (Karn's rule applied by
        the caller: retransmitted segments are never sampled)."""
        if self._srtt == 0.0:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt
        self._rto = min(max(self._srtt + max(4.0 * self._rttvar, 10.0), 200.0), 60_000.0)

    def _fast_retransmit(self) -> None:
        """Resend the segment at the left edge; shrink the window."""
        entry = self._in_flight.pop(self._snd_una, None)
        if entry is None:
            # The hole was already repaired (an RTO fired first, or its
            # ACK is still in flight on a reordered return path).
            return
        payload, timer, _sent_at, _retx, _end = entry
        timer.cancel()
        self._cc.on_fast_retransmit(self._sim.now)
        if self._tracer is not None:
            self._tracer.retransmit(self.name, self._snd_una, "fast")
            self._cc.trace_sample(
                self._tracer, self.name, "fast_retransmit", self._rto, self._flight_size()
            )
        self._transmit(self._snd_una, payload, retransmission=True)

    def _on_timeout(self, seq: int) -> None:
        if seq not in self._in_flight:
            return
        payload, _old_timer, _sent_at, _retx, _end = self._in_flight.pop(seq)
        self._cc.on_timeout(self._sim.now)
        self._rto = min(self._rto * 2.0, 60_000.0)  # exponential backoff
        if self._tracer is not None:
            self._tracer.retransmit(self.name, seq, "rto")
            self._cc.trace_sample(
                self._tracer, self.name, "timeout", self._rto, self._flight_size()
            )
        self._transmit(seq, payload, retransmission=True)

    def _on_ack(self, ack: int) -> None:
        if ack < self._snd_una:
            # Stale: a cumulative ACK overtaken on the return path (ACK
            # reordering) or a late duplicate of one already processed.
            # Cumulative semantics make it carry no information — drop
            # it without touching the duplicate counter.
            return
        if ack == self._snd_una:
            # Duplicate cumulative ACK.  Only meaningful while data is
            # outstanding (RFC 5681: "an ACK that does not advance the
            # window while new data is in flight"); three in a row mark
            # the left-edge segment as lost.
            if self._in_flight:
                self._dup_acks += 1
                if self._dup_acks == 3:
                    self._fast_retransmit()
            return
        self._dup_acks = 0
        newly_acked = ack - self._snd_una
        self._snd_una = ack
        in_flight = self._in_flight
        if self._ordered:
            # Loss-free steady state: insertion order == seq order, so
            # the acked entries are a prefix — stop at the first entry
            # past the ACK instead of filtering the whole flight.
            now = self._sim.now
            acked_seqs = []
            for seq, entry in in_flight.items():
                if entry[4] > ack:
                    break
                acked_seqs.append(seq)
                entry[1].cancel()
                if not entry[3]:
                    self._sample_rtt(now - entry[2])
            for seq in acked_seqs:
                del in_flight[seq]
        else:
            for seq in [s for s, entry in in_flight.items() if entry[4] <= ack]:
                _payload, timer, sent_at, retransmitted, _end = in_flight.pop(seq)
                timer.cancel()
                if not retransmitted:
                    self._sample_rtt(self._sim.now - sent_at)
        self._cc.on_ack(newly_acked, self._sim.now)
        if self._tracer is not None:
            self._cc.trace_sample(
                self._tracer, self.name, "ack", self._rto, self._flight_size()
            )
        self._pump()
        # Level-triggered writability (like EPOLLOUT): whenever an ACK
        # frees buffer space, give the application a chance to write.
        if self._buffered < self._max_buffer:
            self._was_full = False
            if self.endpoint is not None and self.endpoint.on_writable is not None:
                self.endpoint.on_writable()

    # ------------------------------------------------------------------
    # receiver side (runs at the *other* host; links already added delay)
    # ------------------------------------------------------------------
    def _on_segment_arrival(self, seq: int, payload: bytes) -> None:
        if seq == self._rcv_next:
            self._deliver(payload)
            while self._rcv_next in self._reorder:
                self._deliver(self._reorder.pop(self._rcv_next))
        elif seq > self._rcv_next:
            self._reorder[seq] = payload
            # RFC 5681: an out-of-order segment triggers an immediate
            # duplicate ACK so the sender can fast-retransmit.
            self._send_ack_now()
            return
        # else: duplicate of already-delivered data; just re-ACK.
        self._segments_since_ack += 1
        if self._segments_since_ack >= DELAYED_ACK_SEGMENTS:
            self._send_ack_now()
        elif not self._ack_timer.armed:
            self._ack_timer.start(DELAYED_ACK_TIMEOUT_MS)

    def _deliver(self, payload: bytes) -> None:
        self._rcv_next += len(payload)
        self.bytes_delivered += len(payload)
        if self.receiver_endpoint is not None and self.receiver_endpoint.on_data is not None:
            self.receiver_endpoint.on_data(payload)

    def _send_ack_now(self) -> None:
        self._ack_timer.cancel()
        self._segments_since_ack = 0
        self._ack_link.transmit(ACK_SIZE, self._on_ack, self._rcv_next)


class TcpConnection:
    """A full-duplex TCP connection between a client and a server.

    The two directions share the topology's access links: data from the
    server rides the downlink while its ACKs ride the uplink, and vice
    versa for requests.
    """

    transport = "tcp"

    def __init__(
        self,
        sim: Simulator,
        downlink: SharedLink,
        uplink: SharedLink,
        conditions: NetworkConditions,
        rng: Optional[random.Random] = None,
        name: str = "tcp",
        tracer=None,
    ):
        rng = rng or random.Random(0)
        self.name = name
        # client -> server direction: data on uplink, ACKs on downlink.
        self._c2s = _HalfConnection(
            sim, uplink, downlink, conditions, rng, f"{name}:c2s", tracer=tracer
        )
        # server -> client direction: data on downlink, ACKs on uplink.
        self._s2c = _HalfConnection(
            sim, downlink, uplink, conditions, rng, f"{name}:s2c", tracer=tracer
        )
        self.client = TcpEndpoint(self._c2s, self._s2c, f"{name}:client")
        self.server = TcpEndpoint(self._s2c, self._c2s, f"{name}:server")

    def set_send_buffer(self, size: int) -> None:
        """Set the socket send-buffer size for both directions."""
        mss = self._c2s._mss
        if size < mss:
            raise NetworkError(f"send buffer must hold at least one MSS ({mss})")
        self._c2s._max_buffer = size
        self._s2c._max_buffer = size
