"""Declarative website descriptions.

A :class:`WebsiteSpec` captures the structural features the paper's
analysis turns on — HTML size, where each resource is referenced,
whether scripts block, what paints above the fold, which domains host
what — and is *rendered to real bytes* by :mod:`repro.html.builder`.
The replay recorder stores those bytes; the browser model rediscovers
every property by parsing them.  Nothing about a page reaches the
browser out of band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..errors import ConfigError
from .resources import ResourceType, make_url


@dataclass
class ResourceSpec:
    """One sub-resource of a website."""

    name: str
    rtype: ResourceType
    size: int
    #: Hosting domain; ``None`` means the site's primary domain.
    domain: Optional[str] = None
    #: Referenced from ``<head>`` (render-blocking position).
    in_head: bool = False
    #: Relative position of the reference within ``<body>`` (0..1).
    body_fraction: float = 0.1
    #: Script loading attributes.
    async_script: bool = False
    defer_script: bool = False
    #: Main-thread cost to execute (JS) or parse (CSS), in ms.
    exec_ms: float = 0.0
    #: Contribution to the above-the-fold visual completeness when
    #: this resource is painted (0 = invisible, e.g. analytics JS).
    visual_weight: float = 0.0
    #: Below-the-fold resources load but never paint in the viewport.
    above_fold: bool = True
    #: Name of the CSS/JS resource whose *content* references this one
    #: (a font in a stylesheet, a script-injected image, ...).  Hidden
    #: resources are only discoverable after the parent loads/executes.
    loaded_by: Optional[str] = None
    #: ``media="print"`` stylesheets are not render-blocking.
    media_print: bool = False
    #: For CSS: fraction of the stylesheet's rules needed to paint
    #: above-the-fold content (what penthouse would extract).
    critical_fraction: float = 0.25
    #: Announce this resource with a ``<link rel="preload">`` tag at the
    #: top of ``<head>`` — the author-side push alternative the web
    #: standardized on.  Off by default; pages without the flag render
    #: byte-identically to every earlier release.
    preload: bool = False

    #: Fingerprint-neutral defaults: cells whose specs leave these knobs
    #: at their default keep their historical cache keys (see
    #: repro.experiments.engine.fingerprint).
    FINGERPRINT_NEUTRAL = {"preload": False}

    def url(self, primary_domain: str) -> str:
        return make_url(self.domain or primary_domain, self.name)


@dataclass
class WebsiteSpec:
    """A complete website: the base document plus its resources."""

    #: Specs are read-only during replay; forked worlds share them
    #: (see repro.sim.snapshot).
    _fork_atomic = True

    name: str
    primary_domain: str
    html_size: int = 30_000
    #: Visual weight of the HTML's own above-the-fold text content.
    html_visual_weight: float = 30.0
    #: Fraction of the body's text blocks that sit above the fold
    #: (carry visual weight).  1.0 = the whole page is in the viewport;
    #: 0.25 = only the first quarter of the text paints ATF, so growing
    #: the document adds only below-the-fold bytes (Fig. 5's test page).
    atf_text_fraction: float = 1.0
    #: Cost of inline blocking scripts in ``<head>`` / mid-``<body>``.
    head_inline_script_ms: float = 0.0
    body_inline_script_ms: float = 0.0
    #: Position of the inline body script (fraction of body).
    body_inline_fraction: float = 0.5
    resources: List[ResourceSpec] = field(default_factory=list)
    #: domain -> IP for every third-party domain (primary gets its own).
    domain_ips: Dict[str, str] = field(default_factory=dict)
    #: Domains sharing the primary server's IP *and* certificate SANs;
    #: content there is pushable after connection coalescing (§4.1).
    coalesced_domains: Set[str] = field(default_factory=set)
    primary_ip: str = "10.0.0.1"

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        names = set()
        for res in self.resources:
            if res.name in names:
                raise ConfigError(f"{self.name}: duplicate resource name {res.name!r}")
            names.add(res.name)
            if res.size <= 0:
                raise ConfigError(f"{self.name}: resource {res.name} has size {res.size}")
            if not 0.0 <= res.body_fraction <= 1.0:
                raise ConfigError(f"{self.name}: body_fraction out of range for {res.name}")
        for res in self.resources:
            if res.loaded_by is not None and res.loaded_by not in names:
                raise ConfigError(
                    f"{self.name}: {res.name} loaded_by unknown resource {res.loaded_by!r}"
                )
        for domain in self.coalesced_domains:
            if domain != self.primary_domain and domain not in self.domain_ips:
                # Coalesced domains resolve to the primary IP.
                self.domain_ips[domain] = self.primary_ip
        if self.html_size < 500:
            raise ConfigError(f"{self.name}: html_size {self.html_size} too small")

    # ------------------------------------------------------------------
    @property
    def base_url(self) -> str:
        return make_url(self.primary_domain, "")

    def resource(self, name: str) -> ResourceSpec:
        for res in self.resources:
            if res.name == name:
                return res
        raise KeyError(name)

    def url_of(self, name: str) -> str:
        return self.resource(name).url(self.primary_domain)

    def domain_of(self, res: ResourceSpec) -> str:
        return res.domain or self.primary_domain

    def ip_of_domain(self, domain: str) -> str:
        if domain == self.primary_domain or domain in self.coalesced_domains:
            return self.domain_ips.get(domain, self.primary_ip)
        try:
            return self.domain_ips[domain]
        except KeyError:
            raise ConfigError(f"{self.name}: no IP for domain {domain}") from None

    def all_domains(self) -> Set[str]:
        domains = {self.primary_domain}
        domains.update(self.coalesced_domains)
        for res in self.resources:
            domains.add(self.domain_of(res))
        return domains

    def pushable_resources(self) -> List[ResourceSpec]:
        """Resources the primary server is authoritative for (§4.2).

        Content on the primary domain or on a coalesced domain (same
        IP, covered by the certificate) can be pushed on the initial
        connection; everything else is beyond the server's authority.
        """
        pushable = []
        for res in self.resources:
            domain = self.domain_of(res)
            if domain == self.primary_domain or domain in self.coalesced_domains:
                pushable.append(res)
        return pushable

    def pushable_share(self) -> float:
        if not self.resources:
            return 0.0
        return len(self.pushable_resources()) / len(self.resources)

    def total_bytes(self) -> int:
        return self.html_size + sum(res.size for res in self.resources)

    def total_visual_weight(self) -> float:
        weight = self.html_visual_weight
        weight += sum(res.visual_weight for res in self.resources if res.above_fold)
        return weight
