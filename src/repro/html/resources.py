"""Web resource model: types, URLs, and classification."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class ResourceType(enum.Enum):
    """Resource classes the paper's strategies distinguish (§4.2.1)."""

    HTML = "html"
    CSS = "css"
    JS = "js"
    IMAGE = "image"
    FONT = "font"
    OTHER = "other"


#: Content types emitted by the builder / replay server per class.
CONTENT_TYPES = {
    ResourceType.HTML: "text/html; charset=utf-8",
    ResourceType.CSS: "text/css",
    ResourceType.JS: "application/javascript",
    ResourceType.IMAGE: "image/jpeg",
    ResourceType.FONT: "font/woff2",
    ResourceType.OTHER: "application/octet-stream",
}

_TYPE_BY_CONTENT_TYPE = {
    "text/html": ResourceType.HTML,
    "text/css": ResourceType.CSS,
    "application/javascript": ResourceType.JS,
    "text/javascript": ResourceType.JS,
    "image/jpeg": ResourceType.IMAGE,
    "image/png": ResourceType.IMAGE,
    "image/gif": ResourceType.IMAGE,
    "image/webp": ResourceType.IMAGE,
    "image/svg+xml": ResourceType.IMAGE,
    "font/woff2": ResourceType.FONT,
    "font/woff": ResourceType.FONT,
    "application/font-woff": ResourceType.FONT,
}

_TYPE_BY_EXTENSION = {
    "html": ResourceType.HTML,
    "htm": ResourceType.HTML,
    "css": ResourceType.CSS,
    "js": ResourceType.JS,
    "jpg": ResourceType.IMAGE,
    "jpeg": ResourceType.IMAGE,
    "png": ResourceType.IMAGE,
    "gif": ResourceType.IMAGE,
    "webp": ResourceType.IMAGE,
    "svg": ResourceType.IMAGE,
    "woff": ResourceType.FONT,
    "woff2": ResourceType.FONT,
    "ttf": ResourceType.FONT,
}


def classify_content_type(content_type: Optional[str]) -> ResourceType:
    """Map a Content-Type header value to a :class:`ResourceType`."""
    if not content_type:
        return ResourceType.OTHER
    base = content_type.split(";", 1)[0].strip().lower()
    return _TYPE_BY_CONTENT_TYPE.get(base, ResourceType.OTHER)


def classify_url(url: str) -> ResourceType:
    """Best-effort classification from a URL's extension."""
    path = split_url(url)[1].split("?", 1)[0]
    if "." not in path.rsplit("/", 1)[-1]:
        return ResourceType.HTML
    extension = path.rsplit(".", 1)[-1].lower()
    return _TYPE_BY_EXTENSION.get(extension, ResourceType.OTHER)


def split_url(url: str) -> Tuple[str, str]:
    """Split ``https://domain/path`` into ``(domain, /path)``."""
    if "://" in url:
        url = url.split("://", 1)[1]
    if "/" in url:
        domain, path = url.split("/", 1)
        return domain, "/" + path
    return url, "/"


def make_url(domain: str, name: str) -> str:
    """Canonical URL for a named resource on a domain."""
    return f"https://{domain}/{name.lstrip('/')}"


@dataclass
class FetchedResource:
    """A resource as the browser sees it at runtime."""

    url: str
    rtype: ResourceType
    size: int = 0
    discovered_at: float = 0.0
    requested_at: Optional[float] = None
    response_start: Optional[float] = None
    finished_at: Optional[float] = None
    pushed: bool = False
    from_cache: bool = False

    @property
    def domain(self) -> str:
        return split_url(self.url)[0]

    @property
    def path(self) -> str:
        return split_url(self.url)[1]

    @property
    def load_time_ms(self) -> Optional[float]:
        if self.finished_at is None or self.requested_at is None:
            return None
        return self.finished_at - self.requested_at
