"""Render a :class:`~repro.html.spec.WebsiteSpec` to real bytes.

The builder produces the base HTML document and the body of every
sub-resource (stylesheets with ``url(...)`` references to their hidden
children, scripts with ``loadResource(...)`` calls, opaque image/font
bytes).  Everything the browser model later learns about the page, it
learns by parsing these bytes — layout hints travel as ``data-*``
attributes, the self-describing equivalent of the real browser's layout
knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ConfigError
from .resources import CONTENT_TYPES, ResourceType
from .spec import ResourceSpec, WebsiteSpec

#: Number of visible text blocks the HTML body is split into.
TEXT_BLOCKS = 8

_LOREM = (
    "lorem ipsum dolor sit amet consectetur adipiscing elit sed do eiusmod "
    "tempor incididunt ut labore et dolore magna aliqua "
)


@dataclass
class BuiltSite:
    """The rendered website: every body keyed by URL."""

    #: Read-only once built: forked replay worlds share one instance
    #: (see repro.sim.snapshot) exactly as the warm pool's site memo
    #: shares it across runs.
    _fork_atomic = True

    spec: WebsiteSpec
    html: bytes
    html_url: str
    bodies: Dict[str, bytes] = field(default_factory=dict)
    content_types: Dict[str, str] = field(default_factory=dict)

    @property
    def head_end_offset(self) -> int:
        """Byte offset just past ``</head>`` — the natural interleaving
        pause point from the paper's motivating example (§5)."""
        index = self.html.find(b"</head>")
        if index == -1:
            raise ConfigError("built HTML lacks </head>")
        return index + len(b"</head>")

    def url_for(self, name: str) -> str:
        return self.spec.url_of(name)


def build_site(spec: WebsiteSpec) -> BuiltSite:
    """Render the site; the HTML is padded to ``spec.html_size`` bytes.

    If the references alone exceed ``html_size`` the document simply
    ends up larger; sizes are treated as on-the-wire (compressed)
    transfer sizes throughout the testbed.
    """
    _validate_parents(spec)
    html_url = f"https://{spec.primary_domain}/"
    html = _build_html(spec)
    built = BuiltSite(spec=spec, html=html, html_url=html_url)
    built.bodies[html_url] = html
    built.content_types[html_url] = CONTENT_TYPES[ResourceType.HTML]
    for res in spec.resources:
        url = res.url(spec.primary_domain)
        built.bodies[url] = _build_body(spec, res)
        built.content_types[url] = CONTENT_TYPES[res.rtype]
    return built


def _validate_parents(spec: WebsiteSpec) -> None:
    for res in spec.resources:
        if res.loaded_by is None:
            continue
        parent = spec.resource(res.loaded_by)
        if parent.rtype not in (ResourceType.CSS, ResourceType.JS):
            raise ConfigError(
                f"{spec.name}: {res.name} loaded_by {parent.name}, "
                f"but only CSS/JS can load hidden resources"
            )


# ----------------------------------------------------------------------
# HTML document
# ----------------------------------------------------------------------
def _build_html(spec: WebsiteSpec) -> bytes:
    head_parts: List[str] = [
        f'<meta charset="utf-8"><title>{spec.name}</title>',
    ]
    for res in spec.resources:
        # Preload announcements lead the head so the scanner sees them
        # before any reference; a directly-referenced font is skipped
        # because its reference *is* already a rel=preload link.
        if res.preload and not (
            res.rtype == ResourceType.FONT and res.loaded_by is None
        ):
            head_parts.append(_preload_tag(spec, res))
    for res in spec.resources:
        if res.in_head and res.loaded_by is None:
            head_parts.append(_ref_tag(spec, res))
    if spec.head_inline_script_ms > 0:
        head_parts.append(
            f'<script data-exec="{spec.head_inline_script_ms:g}">'
            f"/* inline head work */</script>"
        )

    body_items: List[Tuple[float, str]] = []
    for res in spec.resources:
        if not res.in_head and res.loaded_by is None:
            body_items.append((res.body_fraction, _ref_tag(spec, res)))
    if spec.body_inline_script_ms > 0:
        body_items.append(
            (
                spec.body_inline_fraction,
                f'<script data-exec="{spec.body_inline_script_ms:g}">'
                f"/* inline body work */</script>",
            )
        )
    text_markers: List[Tuple[float, str]] = []
    atf_blocks = max(1, min(TEXT_BLOCKS, round(spec.atf_text_fraction * TEXT_BLOCKS)))
    block_weight = spec.html_visual_weight / atf_blocks
    for block in range(TEXT_BLOCKS):
        fraction = (block + 0.5) / TEXT_BLOCKS
        text_markers.append((fraction, f"@TEXT{block}@"))
    body_items.extend(text_markers)
    body_items.sort(key=lambda item: item[0])

    skeleton = (
        "<!DOCTYPE html>\n<html><head>"
        + "".join(head_parts)
        + "</head>\n<body>"
        + "\n".join(tag for _fraction, tag in body_items)
        + "@PAD@</body></html>"
    )
    # Distribute filler across the text blocks to reach html_size.
    fixed = len(skeleton) - len("@PAD@") - sum(len(f"@TEXT{b}@") for b in range(TEXT_BLOCKS))
    per_block_overhead = len(f'<p data-vw="{block_weight:.3f}"></p>')
    budget = spec.html_size - fixed - TEXT_BLOCKS * per_block_overhead
    per_block = max(budget // TEXT_BLOCKS, 0)
    for block in range(TEXT_BLOCKS):
        text = _filler(per_block)
        weight = block_weight if block < atf_blocks else 0.0
        skeleton = skeleton.replace(
            f"@TEXT{block}@", f'<p data-vw="{weight:.3f}">{text}</p>'
        )
    shortfall = spec.html_size - (len(skeleton) - len("@PAD@"))
    pad = f"<!--{'x' * max(shortfall - 7, 0)}-->" if shortfall > 7 else ""
    return skeleton.replace("@PAD@", pad).encode("utf-8")


#: ``as`` attribute values per resource class (Fetch destination names).
_PRELOAD_AS = {
    ResourceType.CSS: "style",
    ResourceType.JS: "script",
    ResourceType.IMAGE: "image",
    ResourceType.FONT: "font",
    ResourceType.OTHER: "fetch",
}


def _preload_tag(spec: WebsiteSpec, res: ResourceSpec) -> str:
    url = res.url(spec.primary_domain)
    return f'<link rel="preload" as="{_PRELOAD_AS[res.rtype]}" href="{url}">'


def _ref_tag(spec: WebsiteSpec, res: ResourceSpec) -> str:
    url = res.url(spec.primary_domain)
    if res.rtype == ResourceType.CSS:
        media = ' media="print"' if res.media_print else ""
        return f'<link rel="stylesheet" href="{url}" data-exec="{res.exec_ms:g}"{media}>'
    if res.rtype == ResourceType.JS:
        loading = " async" if res.async_script else (" defer" if res.defer_script else "")
        return (
            f'<script src="{url}" data-exec="{res.exec_ms:g}" '
            f'data-vw="{res.visual_weight:g}"{loading}></script>'
        )
    if res.rtype == ResourceType.IMAGE:
        atf = "1" if res.above_fold else "0"
        return f'<img src="{url}" data-vw="{res.visual_weight:g}" data-atf="{atf}">'
    if res.rtype == ResourceType.FONT:
        atf = "1" if res.above_fold else "0"
        return (
            f'<link rel="preload" as="font" href="{url}" '
            f'data-vw="{res.visual_weight:g}" data-atf="{atf}">'
        )
    # OTHER: fetched like an image but invisible.
    return f'<img src="{url}" data-vw="0" data-atf="0">'


def _filler(size: int) -> str:
    if size <= 0:
        return ""
    repeated = _LOREM * (size // len(_LOREM) + 1)
    return repeated[:size]


# ----------------------------------------------------------------------
# sub-resource bodies
# ----------------------------------------------------------------------
def _build_body(spec: WebsiteSpec, res: ResourceSpec) -> bytes:
    children = [child for child in spec.resources if child.loaded_by == res.name]
    if res.rtype == ResourceType.CSS:
        return _build_css(spec, res, children)
    if res.rtype == ResourceType.JS:
        return _build_js(spec, res, children)
    return _binary_body(res)


def _build_css(spec: WebsiteSpec, res: ResourceSpec, children: List[ResourceSpec]) -> bytes:
    """Generate a stylesheet as individual rules.

    A ``critical_fraction`` share of the rule bytes is marked with
    ``.atfN`` selectors — the rules a viewport analysis (penthouse)
    would identify as needed for above-the-fold rendering.  References
    to hidden children ride on ATF rules when the child paints above
    the fold, otherwise on below-the-fold rules.
    """
    lines = [f"/* exec:{res.exec_ms:g} */"]
    for index, child in enumerate(children):
        url = child.url(spec.primary_domain)
        prefix = "atf" if (child.above_fold and child.visual_weight > 0) else "btf"
        if child.rtype == ResourceType.FONT:
            lines.append(
                f"@font-face{{font-family:{prefix}f{index};src:url({url});"
                f"/*vw:{child.visual_weight:g}*/}}"
            )
        else:
            lines.append(
                f".{prefix}bg{index}{{background-image:url({url});"
                f"/*vw:{child.visual_weight:g}*/}}"
            )
    header = "\n".join(lines)
    body_parts = [header]
    size_so_far = len(header)
    atf_budget = res.critical_fraction * res.size
    atf_bytes = sum(len(line) for line in lines if ".atf" in line or "atff" in line)
    index = 0
    filler = (
        "color:#222;margin:0 auto;padding:4px 8px;display:flex;"
        "align-items:center;font-size:14px;line-height:1.5"
    )
    while True:
        if atf_bytes < atf_budget:
            rule = f".atf{index}{{{filler};order:{index}}}"
        else:
            rule = f".btf{index}{{{filler};order:{index}}}"
        if size_so_far + len(rule) + 1 > res.size:
            break
        if rule.startswith(".atf"):
            atf_bytes += len(rule)
        body_parts.append(rule)
        size_so_far += len(rule) + 1
        index += 1
    body = "\n".join(body_parts)
    return _pad_text(body, res.size, "/*", "*/").encode("utf-8")


def _build_js(spec: WebsiteSpec, res: ResourceSpec, children: List[ResourceSpec]) -> bytes:
    lines = [f"// exec:{res.exec_ms:g}"]
    for child in children:
        url = child.url(spec.primary_domain)
        lines.append(f'loadResource("{url}");')
    lines.append("function main(){return 1;}")
    body = "\n".join(lines)
    return _pad_text(body, res.size, "/*", "*/").encode("utf-8")


def _binary_body(res: ResourceSpec) -> bytes:
    seed = (res.name.encode("utf-8") + b"\x00\x01\x02\x03") * (res.size // 4 + 2)
    return seed[: res.size]


def _pad_text(body: str, size: int, open_comment: str, close_comment: str) -> str:
    shortfall = size - len(body)
    overhead = len(open_comment) + len(close_comment) + 1
    if shortfall <= overhead:
        return body
    return body + "\n" + open_comment + "p" * (shortfall - overhead) + close_comment
