"""Website description, HTML/CSS/JS generation, and tokenization."""

from .builder import TEXT_BLOCKS, BuiltSite, build_site
from .serialization import load_spec, save_spec, spec_from_dict, spec_to_dict
from .resources import (
    CONTENT_TYPES,
    FetchedResource,
    ResourceType,
    classify_content_type,
    classify_url,
    make_url,
    split_url,
)
from .spec import ResourceSpec, WebsiteSpec
from .tokenizer import (
    DocumentEndToken,
    FontToken,
    HeadEndToken,
    HtmlTokenizer,
    ImageToken,
    ScriptToken,
    StylesheetToken,
    TextToken,
    Token,
    scan_css,
    scan_exec_hint,
    scan_js,
)

__all__ = [
    "BuiltSite",
    "CONTENT_TYPES",
    "DocumentEndToken",
    "FetchedResource",
    "FontToken",
    "HeadEndToken",
    "HtmlTokenizer",
    "ImageToken",
    "ResourceSpec",
    "ResourceType",
    "ScriptToken",
    "StylesheetToken",
    "TEXT_BLOCKS",
    "TextToken",
    "Token",
    "WebsiteSpec",
    "build_site",
    "classify_content_type",
    "classify_url",
    "load_spec",
    "make_url",
    "save_spec",
    "spec_from_dict",
    "spec_to_dict",
    "scan_css",
    "scan_exec_hint",
    "scan_js",
    "split_url",
]
