"""JSON persistence for website specs.

Site models are the testbed's workloads; being able to save, share, and
reload them (like Mahimahi record directories) is what makes recorded
experiments portable.  The format is plain JSON, one document per spec.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from ..errors import ConfigError
from .resources import ResourceType
from .spec import ResourceSpec, WebsiteSpec


def spec_to_dict(spec: WebsiteSpec) -> Dict:
    return {
        "name": spec.name,
        "primary_domain": spec.primary_domain,
        "primary_ip": spec.primary_ip,
        "html_size": spec.html_size,
        "html_visual_weight": spec.html_visual_weight,
        "atf_text_fraction": spec.atf_text_fraction,
        "head_inline_script_ms": spec.head_inline_script_ms,
        "body_inline_script_ms": spec.body_inline_script_ms,
        "body_inline_fraction": spec.body_inline_fraction,
        "domain_ips": dict(spec.domain_ips),
        "coalesced_domains": sorted(spec.coalesced_domains),
        "resources": [
            {
                "name": res.name,
                "rtype": res.rtype.value,
                "size": res.size,
                "domain": res.domain,
                "in_head": res.in_head,
                "body_fraction": res.body_fraction,
                "async_script": res.async_script,
                "defer_script": res.defer_script,
                "exec_ms": res.exec_ms,
                "visual_weight": res.visual_weight,
                "above_fold": res.above_fold,
                "loaded_by": res.loaded_by,
                "media_print": res.media_print,
                "critical_fraction": res.critical_fraction,
            }
            for res in spec.resources
        ],
    }


def spec_from_dict(data: Dict) -> WebsiteSpec:
    try:
        resources = [
            ResourceSpec(
                name=item["name"],
                rtype=ResourceType(item["rtype"]),
                size=int(item["size"]),
                domain=item.get("domain"),
                in_head=bool(item.get("in_head", False)),
                body_fraction=float(item.get("body_fraction", 0.1)),
                async_script=bool(item.get("async_script", False)),
                defer_script=bool(item.get("defer_script", False)),
                exec_ms=float(item.get("exec_ms", 0.0)),
                visual_weight=float(item.get("visual_weight", 0.0)),
                above_fold=bool(item.get("above_fold", True)),
                loaded_by=item.get("loaded_by"),
                media_print=bool(item.get("media_print", False)),
                critical_fraction=float(item.get("critical_fraction", 0.25)),
            )
            for item in data.get("resources", [])
        ]
        return WebsiteSpec(
            name=data["name"],
            primary_domain=data["primary_domain"],
            primary_ip=data.get("primary_ip", "10.0.0.1"),
            html_size=int(data["html_size"]),
            html_visual_weight=float(data.get("html_visual_weight", 30.0)),
            atf_text_fraction=float(data.get("atf_text_fraction", 1.0)),
            head_inline_script_ms=float(data.get("head_inline_script_ms", 0.0)),
            body_inline_script_ms=float(data.get("body_inline_script_ms", 0.0)),
            body_inline_fraction=float(data.get("body_inline_fraction", 0.5)),
            domain_ips=dict(data.get("domain_ips", {})),
            coalesced_domains=set(data.get("coalesced_domains", [])),
            resources=resources,
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise ConfigError(f"malformed website spec JSON: {exc}") from exc


def save_spec(spec: WebsiteSpec, path) -> None:
    Path(path).write_text(json.dumps(spec_to_dict(spec), indent=2))


def load_spec(path) -> WebsiteSpec:
    path = Path(path)
    if not path.is_file():
        raise ConfigError(f"spec file {path} does not exist")
    return spec_from_dict(json.loads(path.read_text()))
