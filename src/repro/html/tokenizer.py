"""Incremental HTML tokenizer plus CSS/JS reference scanners.

The browser model feeds received bytes into :class:`HtmlTokenizer` and
gets back tokens *with byte offsets*: a token is only emitted once the
bytes containing it have arrived, which is what makes parse progress —
and therefore resource discovery — track the network byte stream.  The
interleaving server uses the same offsets to decide where to pause the
HTML (e.g. just after ``</head>``).

The scanners for CSS (``url(...)`` references: fonts, background
images) and JS (``loadResource("...")`` calls) make hidden resources
discoverable only after their parent resource loads or executes, the
effect the push-order guidelines in the paper worry about (§3).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

_TAG_RE = re.compile(rb"<(/?)([a-zA-Z][a-zA-Z0-9]*)((?:\s+[^<>]*?)?)(/?)>", re.DOTALL)
_ATTR_RE = re.compile(rb'([a-zA-Z][a-zA-Z0-9_-]*)\s*=\s*"([^"]*)"')
_CSS_URL_RE = re.compile(r"url\(\s*['\"]?([^'\")]+)['\"]?\s*\)")
_JS_LOAD_RE = re.compile(r"loadResource\(\s*['\"]([^'\"]+)['\"]\s*\)")
_EXEC_HINT_RE = re.compile(r"/\*\s*exec:(\d+(?:\.\d+)?)\s*\*/")


@dataclass
class Token:
    """Base token; ``offset`` is the byte index just past the token."""

    offset: int


@dataclass
class StylesheetToken(Token):
    url: str = ""
    exec_ms: float = 0.0
    media_print: bool = False


@dataclass
class ScriptToken(Token):
    """External (``url`` set) or inline (``content`` set) script."""

    url: Optional[str] = None
    content: str = ""
    exec_ms: float = 0.0
    visual_weight: float = 0.0
    is_async: bool = False
    is_defer: bool = False


@dataclass
class ImageToken(Token):
    url: str = ""
    visual_weight: float = 0.0
    above_fold: bool = True


@dataclass
class FontToken(Token):
    """``<link rel="preload" as="font">`` reference."""

    url: str = ""
    visual_weight: float = 0.0
    above_fold: bool = True


@dataclass
class PreloadToken(Token):
    """Generic ``<link rel="preload">`` announcement (non-font ``as``).

    Fonts keep their dedicated :class:`FontToken` — a font reference has
    always been spelled ``rel=preload as=font`` in built pages — so this
    token only ever carries style/script/image/fetch destinations.
    """

    url: str = ""
    as_type: str = ""


@dataclass
class TextToken(Token):
    """A paragraph of page text contributing visual weight when parsed."""

    visual_weight: float = 0.0


@dataclass
class HeadEndToken(Token):
    """Emitted at ``</head>``; render can start once CSSOM is ready."""


@dataclass
class DocumentEndToken(Token):
    """Emitted at ``</html>``."""


def _attrs(raw: bytes) -> Dict[str, str]:
    return {
        key.decode("ascii").lower(): value.decode("utf-8", errors="replace")
        for key, value in _ATTR_RE.findall(raw)
    }


def _flag(raw: bytes, name: bytes) -> bool:
    return bool(re.search(rb"(?:^|\s)" + name + rb"(?:\s|=|$)", raw))


class HtmlTokenizer:
    """Streaming tokenizer over an append-only byte buffer."""

    def __init__(self):
        self._buffer = bytearray()
        self._scan_pos = 0
        self.tokens: List[Token] = []

    def feed(self, data: bytes) -> List[Token]:
        """Append bytes and return all newly completed tokens."""
        self._buffer.extend(data)
        new_tokens: List[Token] = []
        while True:
            token = self._next_token()
            if token is None:
                break
            self.tokens.append(token)
            new_tokens.append(token)
        return new_tokens

    @property
    def bytes_seen(self) -> int:
        return len(self._buffer)

    # ------------------------------------------------------------------
    def _next_token(self) -> Optional[Token]:
        buffer = bytes(self._buffer)
        while True:
            start = buffer.find(b"<", self._scan_pos)
            if start == -1:
                return None
            match = _TAG_RE.match(buffer, start)
            if match is None:
                if buffer.find(b">", start) == -1:
                    return None  # tag still incomplete; wait for bytes
                self._scan_pos = start + 1  # not a tag (comment, doctype)
                continue
            closing, tag, raw_attrs, _self_close = match.groups()
            tag = tag.lower()
            end = match.end()
            if closing:
                self._scan_pos = end
                if tag == b"head":
                    return HeadEndToken(offset=end)
                if tag == b"html":
                    return DocumentEndToken(offset=end)
                continue
            token = self._tag_token(tag, raw_attrs, buffer, end)
            if token is _INCOMPLETE:
                return None
            if token is not None:
                return token
            self._scan_pos = end

    def _tag_token(self, tag: bytes, raw_attrs: bytes, buffer: bytes, end: int):
        attrs = _attrs(raw_attrs)
        if tag == b"link":
            return self._link_token(attrs, end)
        if tag == b"script":
            return self._script_token(attrs, raw_attrs, buffer, end)
        if tag == b"img":
            self._scan_pos = end
            return ImageToken(
                offset=end,
                url=attrs.get("src", ""),
                visual_weight=float(attrs.get("data-vw", 0) or 0),
                above_fold=attrs.get("data-atf", "1") != "0",
            )
        if tag == b"p":
            close = buffer.find(b"</p>", end)
            if close == -1:
                return _INCOMPLETE
            offset = close + len(b"</p>")
            self._scan_pos = offset
            return TextToken(offset=offset, visual_weight=float(attrs.get("data-vw", 0) or 0))
        return None

    def _link_token(self, attrs: Dict[str, str], end: int):
        rel = attrs.get("rel", "").lower()
        self._scan_pos = end
        if rel == "stylesheet":
            return StylesheetToken(
                offset=end,
                url=attrs.get("href", ""),
                exec_ms=float(attrs.get("data-exec", 0) or 0),
                media_print=attrs.get("media", "").lower() == "print",
            )
        if rel == "preload" and attrs.get("as", "").lower() == "font":
            return FontToken(
                offset=end,
                url=attrs.get("href", ""),
                visual_weight=float(attrs.get("data-vw", 0) or 0),
                above_fold=attrs.get("data-atf", "1") != "0",
            )
        if rel == "preload":
            return PreloadToken(
                offset=end,
                url=attrs.get("href", ""),
                as_type=attrs.get("as", "").lower(),
            )
        return None

    def _script_token(self, attrs: Dict[str, str], raw_attrs: bytes, buffer: bytes, end: int):
        close = buffer.find(b"</script>", end)
        if close == -1:
            return _INCOMPLETE
        offset = close + len(b"</script>")
        self._scan_pos = offset
        return ScriptToken(
            offset=offset,
            url=attrs.get("src") or None,
            content=buffer[end:close].decode("utf-8", errors="replace"),
            exec_ms=float(attrs.get("data-exec", 0) or 0),
            visual_weight=float(attrs.get("data-vw", 0) or 0),
            is_async=_flag(raw_attrs, b"async"),
            is_defer=_flag(raw_attrs, b"defer"),
        )


#: Sentinel: a tag was recognized but its bytes have not all arrived.
_INCOMPLETE = object()


def scan_css(text: str) -> List[str]:
    """Extract sub-resource URLs (fonts, images) from a stylesheet."""
    return [url for url in _CSS_URL_RE.findall(text) if url.startswith("http")]


def scan_js(text: str) -> List[str]:
    """Extract dynamically loaded resource URLs from script source."""
    return _JS_LOAD_RE.findall(text)


def scan_exec_hint(text: str) -> float:
    """Read an ``/* exec:N */`` main-thread cost hint from CSS text."""
    match = _EXEC_HINT_RE.search(text)
    return float(match.group(1)) if match else 0.0
