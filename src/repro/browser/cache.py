"""Browser HTTP cache model.

The cache matters for push in one specific way the paper highlights
(§2.1): H2 has no standard cache-digest signal, so a server pushes a
resource the client already holds, the client cancels with RST_STREAM,
and the bytes are frequently already in flight — wasted bandwidth.  The
cache ablation benchmark exercises exactly this path.
"""

from __future__ import annotations

from typing import Dict, Optional, Set


class BrowserCache:
    """A URL-keyed cache storing complete response bodies."""

    def __init__(self):
        self._entries: Dict[str, bytes] = {}
        self.hits = 0
        self.misses = 0

    def __contains__(self, url: str) -> bool:
        return url in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def store(self, url: str, body: bytes) -> None:
        self._entries[url] = body

    def lookup(self, url: str) -> Optional[bytes]:
        """Return the cached body, counting hit/miss statistics."""
        body = self._entries.get(url)
        if body is None:
            self.misses += 1
        else:
            self.hits += 1
        return body

    def size_of(self, url: str) -> int:
        return len(self._entries[url])

    def urls(self) -> Set[str]:
        return set(self._entries)

    def clear(self) -> None:
        self._entries.clear()
