"""The browser model: one page load over the simulated network.

The model implements the critical-rendering-path semantics the paper's
case-study analysis relies on:

* an **incremental tokenizer** doubles as the preload scanner — every
  resource reference is fetched the moment its bytes arrive, even while
  the DOM parser is blocked;
* the **DOM parser** lags behind: it charges main-thread time per byte
  and stops at synchronous scripts, which execute only once both the
  script bytes and the CSSOM (pending render-blocking stylesheets) are
  available;
* **render blocking**: first paint requires the ``<head>`` parsed and
  every in-head non-print stylesheet loaded *and* parsed.  Stylesheets
  referenced in the body (the critical-CSS trick) never block paint;
* **paints** happen per text block / image / font / script-revealed
  content, feeding the visual-progress curve that SpeedIndex
  integrates;
* **Server Push** handling: PUSH_PROMISEs for cached or already
  requested URLs are cancelled with RST_STREAM (often too late, as the
  paper notes); other pushed streams park until the parser or preload
  scanner claims them.

Connections are opened per origin with RFC 7540 §9.1.1 coalescing:
a domain rides an existing connection when it resolves to the same IP
and the server's certificate covers it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set

from ..errors import BrowserError
from ..h2.connection import H2Connection
from ..h2.constants import ErrorCode
from ..h2.frames import PriorityData
from ..h2.settings import Settings
from ..html.resources import ResourceType, classify_url, split_url
from ..html.tokenizer import (
    DocumentEndToken,
    FontToken,
    HeadEndToken,
    HtmlTokenizer,
    ImageToken,
    PreloadToken,
    ScriptToken,
    StylesheetToken,
    TextToken,
    Token,
    scan_css,
    scan_exec_hint,
    scan_js,
)
from ..netsim.topology import Topology
from ..sim import Simulator

if TYPE_CHECKING:  # typing-only imports; avoids a cycle through repro.replay
    from ..replay.certs import CertificateAuthority
    from ..server.h2server import ServerFarm
from .cache import BrowserCache
from .main_thread import MainThread
from .priorities import WEIGHT_ASYNC_JS, WEIGHT_IMAGE, WEIGHT_MAIN, weight_for
from .timings import PageTimeline, RequestTrace


@dataclass
class BrowserConfig:
    """Tunables of the browser model."""

    #: Send SETTINGS_ENABLE_PUSH=0 when False (the paper's *no push*).
    enable_push: bool = True
    #: Main-thread HTML parsing throughput.
    parse_rate_bytes_per_ms: float = 5_000.0
    #: SETTINGS_INITIAL_WINDOW_SIZE advertised by the client
    #: (Chromium uses a multi-megabyte window).
    initial_window: int = 6 * 1024 * 1024
    #: Relative jitter applied to main-thread task durations (models
    #: client-side processing noise across repeated runs).
    cpu_jitter: float = 0.04
    #: Chromium's resource scheduler keeps only a bounded number of
    #: *delayable* (image / async-script / other low-priority) requests
    #: in flight so they cannot starve render-critical fetches.
    max_delayable_in_flight: int = 10
    #: Attach a cache digest (draft-ietf-httpbis-cache-digest) to the
    #: navigation request so the server can skip pushing cached objects.
    send_cache_digest: bool = False
    #: Application protocol: "h2" (default) or "h1" — the HTTP/1.1
    #: baseline with six serial connections per origin and no push.
    protocol: str = "h2"


class _Fetch:
    """One resource load (requested or pushed)."""

    __slots__ = (
        "url",
        "rtype",
        "stream_id",
        "conn_key",
        "body",
        "discovered_at",
        "requested_at",
        "response_start",
        "finished_at",
        "pushed",
        "adopted",
        "cancelled",
        "from_cache",
        "complete",
        "render_blocking",
        "cssom_ready",
        "parsed",
        "painted",
        "visual_weight",
        "above_fold",
        "exec_ms",
        "is_async",
        "is_defer",
        "token_offset",
        "executed",
        "weight",
    )

    def __init__(self, url: str, rtype: ResourceType):
        self.url = url
        self.rtype = rtype
        self.stream_id: Optional[int] = None
        self.conn_key: Optional[str] = None
        self.body = bytearray()
        self.discovered_at = 0.0
        self.requested_at: Optional[float] = None
        self.response_start: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.pushed = False
        self.adopted = False
        self.cancelled = False
        self.from_cache = False
        self.complete = False
        self.render_blocking = False
        self.cssom_ready = False  # CSS: loaded AND parsed
        self.parsed = False       # the referencing element was DOM-parsed
        self.painted = False
        self.visual_weight = 0.0
        self.above_fold = True
        self.exec_ms = 0.0
        self.is_async = False
        self.is_defer = False
        self.token_offset = 0
        self.executed = False
        self.weight: Optional[int] = None


class _ConnectionEntry:
    """A pooled client connection (possibly still handshaking)."""

    __slots__ = (
        "ip",
        "domain",
        "conn",
        "established",
        "pending",
        "html_stream_id",
        "chain",
        "stream_fetch",
    )

    def __init__(self, ip: str, domain: str):
        self.ip = ip
        self.domain = domain
        self.conn: Optional[H2Connection] = None
        self.established = False
        self.pending: List[_Fetch] = []
        self.html_stream_id: Optional[int] = None
        #: (stream_id, weight, fetch) in creation order — the Chromium
        #: H2 dependency chain (see _parent_for).
        self.chain: List[tuple] = []
        #: stream id -> in-flight fetch on this connection.  Keyed by
        #: the bare int (the entry scopes the connection), so the
        #: per-DATA-frame lookup allocates no tuple key.
        self.stream_fetch: Dict[int, _Fetch] = {}


class PageLoad:
    """Drives one navigation to completion and records the timeline."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        servers: ServerFarm,
        ca: CertificateAuthority,
        main_url: str,
        config: Optional[BrowserConfig] = None,
        cache: Optional[BrowserCache] = None,
        rng=None,
        tracer=None,
    ):
        self.sim = sim
        self.topology = topology
        self.servers = servers
        self.ca = ca
        self.main_url = main_url
        self.config = config or BrowserConfig()
        #: Optional event tracer (``repro.trace``); all hooks are
        #: read-only so traced loads stay bit-identical.
        self._tracer = tracer
        # Note: an empty BrowserCache is falsy (it has __len__), so an
        # ``or`` default would silently discard a shared cache object.
        self.cache = cache if cache is not None else BrowserCache()
        self.timeline = PageTimeline()
        self.main_thread = MainThread(sim, rng=rng, jitter=self.config.cpu_jitter)
        self.main_thread.on_idle = self._check_onload

        self._fetches: Dict[str, _Fetch] = {}
        self._pushed_unclaimed: Dict[str, _Fetch] = {}
        self._connections: Dict[str, _ConnectionEntry] = {}

        self._tokenizer = HtmlTokenizer()
        self._tokens: List[Token] = []
        #: </head> has been *scanned* (tokenizer), vs parsed below.
        self._head_seen_in_scan = False
        self._parser_index = 0
        self._parsed_offset = 0
        self._parser_task_running = False
        self._blocking_script: Optional[_Fetch] = None
        self._head_parsed = False
        self._parser_done = False
        self._html_complete = False
        self._render_started = False
        self._deferred_scripts: List[_Fetch] = []
        self._pending_paints: List[tuple] = []  # (weight, source)
        self._pending_inline: Optional[ScriptToken] = None
        self._onload_fired = False
        self._delayable_queue: Deque[_Fetch] = deque()
        self._delayable_in_flight = 0
        self._h1_pools = None
        if self.config.protocol == "h1":
            from ..h1.pool import H1PoolManager

            self._h1_pools = H1PoolManager(
                topology, lambda ip: self.servers.get(ip).accept
            )
        elif self.config.protocol != "h2":
            raise BrowserError(f"unknown protocol {self.config.protocol!r}")

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the navigation; run the simulator afterwards."""
        self.timeline.navigation_start = self.sim.now
        if self._tracer is not None:
            self._tracer.milestone("navigation_start")
        main_domain = split_url(self.main_url)[0]
        # The navigation's own DNS lookup happens before connectEnd; the
        # paper's PLT starts at connectEnd, so pre-warm it.
        self.topology.prewarm_dns(main_domain)
        fetch = self._new_fetch(self.main_url, ResourceType.HTML, initiator="navigation")
        self.timeline.requests.append(
            RequestTrace(
                url=self.main_url,
                requested_at=self.sim.now,
                weight=WEIGHT_MAIN,
                pushed=False,
                initiator="navigation",
            )
        )
        if self._tracer is not None:
            self._tracer.resource_requested(self.main_url, False)
        self._issue_request(fetch)

    @property
    def finished(self) -> bool:
        return self._onload_fired

    # ------------------------------------------------------------------
    # fetch machinery
    # ------------------------------------------------------------------
    def _new_fetch(self, url: str, rtype: ResourceType, initiator: str) -> _Fetch:
        fetch = _Fetch(url, rtype)
        fetch.discovered_at = self.sim.now
        self._fetches[url] = fetch
        if self._tracer is not None:
            self._tracer.resource_discovered(url, rtype.name, initiator)
        return fetch

    def fetch(
        self,
        url: str,
        rtype: ResourceType,
        initiator: str,
        is_async: bool = False,
        initiator_url: Optional[str] = None,
        weight_override: Optional[int] = None,
    ) -> _Fetch:
        """Load a resource: cache, pushed stream, or network request."""
        existing = self._fetches.get(url)
        if existing is not None:
            return existing
        fetch = self._new_fetch(url, rtype, initiator)
        fetch.is_async = is_async
        fetch.weight = weight_override if weight_override is not None else weight_for(rtype, is_async)

        cached_body = self.cache.lookup(url)
        if cached_body is not None:
            fetch.from_cache = True
            fetch.requested_at = self.sim.now
            fetch.body.extend(cached_body)
            if self._tracer is not None:
                self._tracer.cache_hit(url, len(cached_body))
                self._tracer.resource_requested(url, False)
            self.sim.call_soon(lambda: self._complete_fetch(fetch))
            return fetch

        parked = self._pushed_unclaimed.pop(url, None)
        if parked is not None:
            self._adopt_push(fetch, parked)
            return fetch

        self.timeline.requests.append(
            RequestTrace(
                url=url,
                requested_at=self.sim.now,
                weight=fetch.weight,
                pushed=False,
                initiator=initiator,
                initiator_url=initiator_url,
            )
        )
        if self._tracer is not None:
            self._tracer.resource_requested(url, False)
        if self._is_delayable(fetch):
            if self._delayable_in_flight >= self.config.max_delayable_in_flight:
                self._delayable_queue.append(fetch)
                return fetch
            self._delayable_in_flight += 1
        fetch.requested_at = self.sim.now
        self._issue_request(fetch)
        return fetch

    def _is_delayable(self, fetch: _Fetch) -> bool:
        """Chromium resource-scheduler classification: low-priority
        requests that may be held back while critical work is active."""
        weight = fetch.weight if fetch.weight is not None else weight_for(
            fetch.rtype, fetch.is_async
        )
        return weight <= WEIGHT_ASYNC_JS

    def _release_delayable(self, fetch: _Fetch) -> None:
        if not self._is_delayable(fetch) or fetch.pushed or fetch.from_cache:
            return
        self._delayable_in_flight = max(self._delayable_in_flight - 1, 0)
        while (
            self._delayable_queue
            and self._delayable_in_flight < self.config.max_delayable_in_flight
        ):
            queued = self._delayable_queue.popleft()
            self._delayable_in_flight += 1
            queued.requested_at = self.sim.now
            self._issue_request(queued)

    def _issue_request(self, fetch: _Fetch) -> None:
        if self._h1_pools is not None:
            self._issue_h1_request(fetch)
            return
        domain = split_url(fetch.url)[0]
        entry = self._connection_for(domain)
        if not entry.established:
            entry.pending.append(fetch)
            return
        self._send_request(entry, fetch)

    def _issue_h1_request(self, fetch: _Fetch) -> None:
        """HTTP/1.1 path: serial requests over a per-origin pool."""
        domain = split_url(fetch.url)[0]
        pool = self._h1_pools.pool_for(domain)
        if self.timeline.connect_end is None and pool.on_first_established is None:
            def mark_connected() -> None:
                if self.timeline.connect_end is None:
                    self.timeline.connect_end = self.sim.now

            pool.on_first_established = mark_connected
        if fetch.requested_at is None:
            fetch.requested_at = self.sim.now

        def on_response(status, headers) -> None:
            if fetch.response_start is None:
                fetch.response_start = self.sim.now
            if fetch.rtype == ResourceType.HTML:
                for hint in _parse_link_preloads(headers):
                    self._preload_hint(hint, "link_header")

        def on_informational(status, headers) -> None:
            if status != 103:
                return
            hints = _parse_link_preloads(headers)
            if self._tracer is not None:
                self._tracer.early_hints_received(f"h1-{domain}", 0, len(hints))
            for hint in hints:
                self._preload_hint(hint, "early_hints")

        def on_data(chunk: bytes) -> None:
            fetch.body.extend(chunk)
            if fetch.rtype == ResourceType.HTML and fetch.url == self.main_url:
                self._on_html_bytes(chunk)

        pool.fetch(
            fetch.url,
            on_response=on_response,
            on_data=on_data,
            on_complete=lambda: self._complete_fetch(fetch),
            headers=[("user-agent", "repro-browser/1.0 (HTTP/1.1)")],
            on_informational=on_informational,
        )

    def _connection_for(self, domain: str) -> _ConnectionEntry:
        ip = self.topology.resolve(domain)
        # Exact-origin reuse.
        entry = self._connections.get(domain)
        if entry is not None:
            return entry
        # RFC 7540 §9.1.1 coalescing onto an existing connection.
        for existing in self._connections.values():
            if self.ca.can_coalesce(existing.ip, domain, ip):
                self._connections[domain] = existing
                return existing
        entry = _ConnectionEntry(ip, domain)
        self._connections[domain] = entry
        self.topology.open_connection(domain, lambda tcp: self._on_connected(entry, tcp))
        return entry

    def _on_connected(self, entry: _ConnectionEntry, tcp) -> None:
        if entry.ip not in self.servers:
            raise BrowserError(f"no replay server for IP {entry.ip}")
        self.servers.get(entry.ip).accept(tcp)
        settings = Settings(
            enable_push=1 if self.config.enable_push else 0,
            initial_window_size=self.config.initial_window,
        )
        if getattr(tcp, "transport", "tcp") == "quic":
            from ..mechanisms.h2quic import H2OverQuicConnection

            conn: H2Connection = H2OverQuicConnection(
                tcp.client, "client", settings=settings, tracer=self._tracer
            )
        else:
            conn = H2Connection(
                tcp.client, "client", settings=settings, tracer=self._tracer
            )
        conn.on_response = lambda sid, headers: self._on_response(entry, sid, headers)
        conn.on_informational = (
            lambda sid, headers: self._on_informational(entry, sid, headers)
        )
        conn.on_data = lambda sid, data: self._on_data(entry, sid, data)
        conn.on_stream_end = lambda sid: self._on_stream_end(entry, sid)
        conn.on_push_promise = (
            lambda parent, promised, headers: self._on_push_promise(entry, promised, headers)
        )
        entry.conn = conn
        entry.established = True
        if self.timeline.connect_end is None:
            self.timeline.connect_end = self.sim.now
            if self._tracer is not None:
                self._tracer.milestone("connect_end")
        pending, entry.pending = entry.pending, []
        for fetch in pending:
            self._send_request(entry, fetch)

    def _send_request(self, entry: _ConnectionEntry, fetch: _Fetch) -> None:
        domain, path = split_url(fetch.url)
        headers = [
            (":method", "GET"),
            (":scheme", "https"),
            (":authority", domain),
            (":path", path),
            ("user-agent", "repro-browser/1.0 (Chromium 64 model)"),
            ("accept-encoding", "gzip, deflate"),
        ]
        if (
            fetch.rtype == ResourceType.HTML
            and self.config.send_cache_digest
            and len(self.cache)
        ):
            from ..h2.cache_digest import CacheDigest

            digest = CacheDigest.from_urls(self.cache.urls())
            headers.append(("cache-digest", digest.to_header_value()))
        weight = fetch.weight if fetch.weight is not None else weight_for(
            fetch.rtype, fetch.is_async
        )
        depends_on = self._parent_for(entry, weight)
        priority = PriorityData(depends_on=depends_on, weight=weight)
        stream_id = entry.conn.request(headers, priority=priority)
        entry.chain.append((stream_id, weight, fetch))
        fetch.stream_id = stream_id
        fetch.conn_key = entry.domain
        if fetch.requested_at is None:
            fetch.requested_at = self.sim.now
        if fetch.rtype == ResourceType.HTML and entry.html_stream_id is None:
            entry.html_stream_id = stream_id
        entry.stream_fetch[stream_id] = fetch

    def _parent_for(self, entry: _ConnectionEntry, weight: int) -> int:
        """Chromium's H2 dependency chain: a new stream depends on the
        most recently created, still-active stream of greater-or-equal
        priority.  The resulting tree serializes lower-priority streams
        behind critical ones — the server sends the entire HTML before
        the CSS, the CSS before scripts, scripts before images (§5)."""
        for stream_id, chain_weight, fetch in reversed(entry.chain):
            if chain_weight >= weight and not fetch.complete and not fetch.cancelled:
                return stream_id
        if entry.html_stream_id is not None and not self._html_complete:
            return entry.html_stream_id
        return 0

    # ------------------------------------------------------------------
    # connection events
    # ------------------------------------------------------------------
    def _on_response(self, entry: _ConnectionEntry, stream_id: int, headers) -> None:
        fetch = entry.stream_fetch.get(stream_id)
        if fetch is not None and fetch.response_start is None:
            fetch.response_start = self.sim.now
            if self._tracer is not None:
                self._tracer.resource_response(fetch.url)
        if fetch is not None and fetch.rtype == ResourceType.HTML:
            for hint in _parse_link_preloads(headers):
                self._preload_hint(hint, "link_header")

    def _on_informational(
        self, entry: _ConnectionEntry, stream_id: int, headers
    ) -> None:
        """An interim response arrived (103 Early Hints, RFC 8297)."""
        status = next((value for name, value in headers if name == ":status"), "")
        if status != "103":
            return
        hints = _parse_link_preloads(headers)
        if self._tracer is not None:
            self._tracer.early_hints_received(
                entry.conn._trace_name, stream_id, len(hints)
            )
        for hint in hints:
            self._preload_hint(hint, "early_hints")

    def _preload_hint(self, url: str, source: str) -> None:
        """Fetch a preload-announced resource (link header / 103 hint)."""
        rtype = classify_url(url)
        if self._tracer is not None and url not in self._fetches:
            self._tracer.preload_discovered(url, rtype.name, source)
        # Link-header hints keep their historical initiator tag.
        initiator = "hint" if source == "link_header" else source
        self.fetch(url, rtype, initiator=initiator)

    def _on_data(self, entry: _ConnectionEntry, stream_id: int, data: bytes) -> None:
        fetch = entry.stream_fetch.get(stream_id)
        if fetch is None or fetch.cancelled:
            return
        fetch.body.extend(data)
        if fetch.pushed:
            self.timeline.pushed_bytes += len(data)
            if self._tracer is not None:
                self._tracer.push_data(fetch.url, len(data), not fetch.adopted)
        if fetch.rtype == ResourceType.HTML and fetch.url == self.main_url:
            self._on_html_bytes(data)

    def _on_stream_end(self, entry: _ConnectionEntry, stream_id: int) -> None:
        fetch = entry.stream_fetch.get(stream_id)
        if fetch is None or fetch.cancelled:
            return
        if fetch.pushed and not fetch.adopted:
            fetch.complete = True  # parked; claimed later or wasted
            return
        self._complete_fetch(fetch)

    def _on_push_promise(self, entry: _ConnectionEntry, promised_id: int, headers) -> None:
        pseudo = dict(headers)
        url = f"{pseudo.get(':scheme', 'https')}://{pseudo.get(':authority', '')}{pseudo.get(':path', '/')}"
        self.timeline.pushes_received += 1
        if self._tracer is not None:
            self._tracer.push_received(entry.conn._trace_name, promised_id, url)
        already_have = url in self.cache or url in self._fetches
        if already_have:
            # Cancel — though bytes may already be in flight (§2.1).
            if self._tracer is not None:
                reason = "cached" if url in self.cache else "already_requested"
                self._tracer.push_rejected(
                    entry.conn._trace_name, promised_id, url, reason
                )
            entry.conn.reset_stream_raw(promised_id, ErrorCode.CANCEL)
            self.timeline.pushes_cancelled += 1
            return
        rtype = classify_url(url)
        fetch = _Fetch(url, rtype)
        fetch.pushed = True
        fetch.discovered_at = self.sim.now
        fetch.stream_id = promised_id
        fetch.conn_key = entry.domain
        entry.stream_fetch[promised_id] = fetch
        self._pushed_unclaimed[url] = fetch
        # Chromium (as of v64) does not reprioritize promised streams —
        # the server's plan-order chain governs pushed-stream priority —
        # but it *does* account for them when choosing dependencies for
        # subsequent requests, so a later image request chains behind a
        # promised stylesheet instead of competing with it.
        entry.chain.append((promised_id, weight_for(rtype), fetch))
        self.timeline.requests.append(
            RequestTrace(
                url=url,
                requested_at=self.sim.now,
                weight=WEIGHT_IMAGE,
                pushed=True,
                initiator="push",
            )
        )
        if self._tracer is not None:
            self._tracer.resource_requested(url, True)

    def _adopt_push(self, fetch: _Fetch, parked: _Fetch) -> None:
        """A discovered resource matches an in-flight pushed stream."""
        parked.adopted = True
        fetch.pushed = True
        fetch.adopted = True
        fetch.stream_id = parked.stream_id
        fetch.conn_key = parked.conn_key
        fetch.requested_at = self.sim.now
        fetch.response_start = parked.response_start
        fetch.body = parked.body
        self.timeline.pushes_adopted += 1
        if self._tracer is not None:
            self._tracer.push_adopted(fetch.url, parked.stream_id)
        # Rebind the stream to the adopting fetch for future data.
        for conn_entry in self._connections.values():
            table = conn_entry.stream_fetch
            for key, value in list(table.items()):
                if value is parked:
                    table[key] = fetch
        if parked.complete:
            self.sim.call_soon(lambda: self._complete_fetch(fetch))

    # ------------------------------------------------------------------
    # resource completion pipeline
    # ------------------------------------------------------------------
    def _complete_fetch(self, fetch: _Fetch) -> None:
        if fetch.complete and fetch.finished_at is not None:
            return
        fetch.complete = True
        fetch.finished_at = self.sim.now
        if self._tracer is not None:
            self._tracer.resource_finished(
                fetch.url, len(fetch.body), fetch.pushed, fetch.from_cache
            )
        if not fetch.from_cache:
            self.cache.store(fetch.url, bytes(fetch.body))
        self._record_resource(fetch)
        self._release_delayable(fetch)

        if fetch.rtype == ResourceType.CSS:
            self._on_css_loaded(fetch)
        elif fetch.rtype == ResourceType.JS:
            self._on_js_loaded(fetch)
        elif fetch.rtype in (ResourceType.IMAGE, ResourceType.FONT):
            self._maybe_paint_resource(fetch)
        elif fetch.rtype == ResourceType.HTML and fetch.url == self.main_url:
            self._html_complete = True
            if fetch.from_cache:
                self._on_html_bytes(bytes(fetch.body))
            self._advance_parser()
        self._check_onload()

    def _record_resource(self, fetch: _Fetch) -> None:
        from ..html.resources import FetchedResource

        self.timeline.resources[fetch.url] = FetchedResource(
            url=fetch.url,
            rtype=fetch.rtype,
            size=len(fetch.body),
            discovered_at=fetch.discovered_at,
            requested_at=fetch.requested_at,
            response_start=fetch.response_start,
            finished_at=fetch.finished_at,
            pushed=fetch.pushed,
            from_cache=fetch.from_cache,
        )

    # ------------------------------------------------------------------
    # HTML tokenization (preload scanning) and discovery
    # ------------------------------------------------------------------
    def _on_html_bytes(self, data: bytes) -> None:
        for token in self._tokenizer.feed(data):
            self._tokens.append(token)
            self._discover(token)
        self._advance_parser()

    def _discover(self, token: Token) -> None:
        """Preload scanner: fetch references the moment they are seen."""
        if isinstance(token, HeadEndToken):
            self._head_seen_in_scan = True
        elif isinstance(token, StylesheetToken) and token.url:
            # Only stylesheets referenced inside <head> block the first
            # paint; the critical-CSS deployment moves the rest to the
            # end of <body> precisely to escape this.  Non-blocking CSS
            # is also *fetched* at low priority (Chromium behaviour).
            blocking = not token.media_print and not self._head_seen_in_scan
            fetch = self.fetch(
                token.url,
                ResourceType.CSS,
                initiator="preload",
                weight_override=None if blocking else WEIGHT_ASYNC_JS,
            )
            fetch.exec_ms = max(fetch.exec_ms, token.exec_ms)
            fetch.token_offset = token.offset
            if blocking:
                fetch.render_blocking = True
        elif isinstance(token, ScriptToken) and token.url:
            fetch = self.fetch(
                token.url,
                ResourceType.JS,
                initiator="preload",
                is_async=token.is_async or token.is_defer,
            )
            fetch.exec_ms = max(fetch.exec_ms, token.exec_ms)
            fetch.visual_weight = max(fetch.visual_weight, token.visual_weight)
            fetch.is_defer = token.is_defer
            fetch.token_offset = token.offset
        elif isinstance(token, ImageToken) and token.url:
            fetch = self.fetch(token.url, ResourceType.IMAGE, initiator="preload")
            fetch.visual_weight = max(fetch.visual_weight, token.visual_weight)
            fetch.above_fold = token.above_fold
            fetch.token_offset = token.offset
        elif isinstance(token, FontToken) and token.url:
            fetch = self.fetch(token.url, ResourceType.FONT, initiator="preload")
            fetch.visual_weight = max(fetch.visual_weight, token.visual_weight)
            fetch.above_fold = token.above_fold
            fetch.parsed = True  # fonts need no DOM element to apply
        elif isinstance(token, PreloadToken) and token.url:
            rtype = _PRELOAD_AS_TYPES.get(token.as_type) or classify_url(token.url)
            if self._tracer is not None and token.url not in self._fetches:
                self._tracer.preload_discovered(token.url, rtype.name, "link_tag")
            fetch = self.fetch(token.url, rtype, initiator="preload_tag")
            if fetch.rtype == ResourceType.CSS and fetch.token_offset == 0:
                # A preload is a fetch hint only: until the real
                # <link rel=stylesheet> is parsed (which overwrites the
                # offset), the stylesheet must not register a CSSOM
                # dependency for scripts that follow the announcement.
                fetch.token_offset = _NO_CSSOM_OFFSET

    # ------------------------------------------------------------------
    # DOM parser
    # ------------------------------------------------------------------
    def _advance_parser(self) -> None:
        if (
            self._parser_task_running
            or self._parser_done
            or self._blocking_script is not None
        ):
            return
        if self._parser_index >= len(self._tokens):
            return
        token = self._tokens[self._parser_index]
        span = max(token.offset - self._parsed_offset, 0)
        cost = span / self.config.parse_rate_bytes_per_ms
        self._parser_task_running = True
        self.main_thread.submit(cost, lambda: self._finish_token(token), label="parse")

    def _finish_token(self, token: Token) -> None:
        self._parser_task_running = False
        self._parser_index += 1
        self._parsed_offset = token.offset
        self._process_token(token)
        self._advance_parser()

    def _process_token(self, token: Token) -> None:
        if isinstance(token, TextToken):
            self._queue_paint(token.visual_weight, "text")
        elif isinstance(token, HeadEndToken):
            self._head_parsed = True
            self._maybe_start_render()
        elif isinstance(token, StylesheetToken):
            pass  # handled at discovery / completion
        elif isinstance(token, ImageToken) and token.url:
            fetch = self._fetches.get(token.url)
            if fetch is not None:
                fetch.parsed = True
                self._maybe_paint_resource(fetch)
        elif isinstance(token, FontToken):
            pass
        elif isinstance(token, ScriptToken):
            self._process_script_token(token)
        elif isinstance(token, DocumentEndToken):
            self._finish_parsing()

    def _process_script_token(self, token: ScriptToken) -> None:
        if token.url is None:
            # Inline script: executes once preceding CSSOM is ready.
            self._run_inline_script(token)
            return
        fetch = self._fetches.get(token.url)
        if fetch is None:
            return
        fetch.parsed = True
        if fetch.is_defer:
            self._deferred_scripts.append(fetch)
            return
        if fetch.is_async:
            if fetch.complete and not fetch.executed:
                self._execute_script(fetch)
            return
        # Synchronous script: blocks the parser.
        self._blocking_script = fetch
        self._try_run_blocking_script()

    def _run_inline_script(self, token: ScriptToken) -> None:
        if not self._cssom_ready_for(token.offset):
            self._blocking_script = _INLINE_SENTINEL
            self._pending_inline = token
            return
        self._execute_inline(token)

    def _execute_inline(self, token: ScriptToken) -> None:
        def done() -> None:
            for url in scan_js(token.content):
                self.fetch(url, classify_url(url), initiator="js", initiator_url=self.main_url)
            if token.visual_weight > 0:
                self._queue_paint(token.visual_weight, "inline-script")
            self._advance_parser()
            self._check_onload()

        if token.exec_ms > 0:
            self.main_thread.submit(token.exec_ms, done, label="inline-js")
        else:
            done()

    def _try_run_blocking_script(self) -> None:
        fetch = self._blocking_script
        if fetch is None:
            return
        if fetch is _INLINE_SENTINEL:
            token = self._pending_inline
            if self._cssom_ready_for(token.offset):
                self._blocking_script = None
                self._execute_inline(token)
            return
        if not fetch.complete:
            return
        if not self._cssom_ready_for(fetch.token_offset):
            return
        self._blocking_script = None
        self._execute_script(fetch, resume_parser=True)

    def _execute_script(self, fetch: _Fetch, resume_parser: bool = False) -> None:
        fetch.executed = True
        source = bytes(fetch.body).decode("utf-8", errors="replace")

        def done() -> None:
            for url in scan_js(source):
                self.fetch(url, classify_url(url), initiator="js", initiator_url=fetch.url)
            if fetch.visual_weight > 0:
                self._queue_paint(fetch.visual_weight, fetch.url)
            if resume_parser:
                self._advance_parser()
            self._check_onload()

        self.main_thread.submit(max(fetch.exec_ms, 0.0), done, label="js")

    def _finish_parsing(self) -> None:
        self._parser_done = True
        self.timeline.dom_content_loaded = self.sim.now
        if self._tracer is not None:
            self._tracer.milestone("dom_content_loaded")
        for fetch in self._deferred_scripts:
            if fetch.complete and not fetch.executed:
                self._execute_script(fetch)
        self._maybe_start_render()
        self._check_onload()

    # ------------------------------------------------------------------
    # CSS pipeline
    # ------------------------------------------------------------------
    def _on_css_loaded(self, fetch: _Fetch) -> None:
        source = bytes(fetch.body).decode("utf-8", errors="replace")
        parse_cost = max(fetch.exec_ms, scan_exec_hint(source))

        def parsed() -> None:
            fetch.cssom_ready = True
            for url in scan_css(source):
                child = self.fetch(url, classify_url(url), initiator="css", initiator_url=fetch.url)
                child.parsed = True  # applied by stylesheet, no DOM element
                weight = _css_child_weight(source, url)
                child.visual_weight = max(child.visual_weight, weight)
                self._maybe_paint_resource(child)
            self._maybe_start_render()
            self._try_run_blocking_script()
            self._check_onload()

        self.main_thread.submit(parse_cost, parsed, label="css-parse")

    def _on_js_loaded(self, fetch: _Fetch) -> None:
        if fetch is self._blocking_script:
            self._try_run_blocking_script()
        elif fetch.is_async and not fetch.is_defer and not fetch.executed:
            # Async scripts run as soon as they arrive.
            self._execute_script(fetch)
        elif fetch.is_defer and self._parser_done and not fetch.executed:
            self._execute_script(fetch)

    def _cssom_ready_for(self, offset: int) -> bool:
        """All non-print stylesheets referenced before ``offset`` ready."""
        for fetch in self._fetches.values():
            if fetch.rtype != ResourceType.CSS or fetch.cancelled:
                continue
            if fetch.token_offset and fetch.token_offset > offset:
                continue
            if fetch.render_blocking or fetch.token_offset <= offset:
                if not fetch.cssom_ready:
                    return False
        return True

    def _render_blocking_ready(self) -> bool:
        return all(
            fetch.cssom_ready
            for fetch in self._fetches.values()
            if fetch.render_blocking and not fetch.cancelled
        )

    # ------------------------------------------------------------------
    # paint pipeline
    # ------------------------------------------------------------------
    def _maybe_start_render(self) -> None:
        if self._render_started:
            return
        if not (self._head_parsed or self._parser_done):
            return
        if not self._render_blocking_ready():
            return
        self._render_started = True
        pending, self._pending_paints = self._pending_paints, []
        for weight, source in pending:
            self._record_paint(weight, source)
        for fetch in self._fetches.values():
            self._maybe_paint_resource(fetch)

    def _queue_paint(self, weight: float, source: str) -> None:
        if weight <= 0:
            return
        if self._render_started:
            self._record_paint(weight, source)
        else:
            self._pending_paints.append((weight, source))
            self._maybe_start_render()

    def _maybe_paint_resource(self, fetch: _Fetch) -> None:
        if fetch.painted or fetch.visual_weight <= 0 or not fetch.above_fold:
            return
        if fetch.rtype not in (ResourceType.IMAGE, ResourceType.FONT):
            return
        if not (fetch.complete and fetch.parsed and self._render_started):
            return
        fetch.painted = True
        self._record_paint(fetch.visual_weight, fetch.url)

    def _record_paint(self, weight: float, source: str) -> None:
        """Record a paint, emitting trace events alongside (paint +
        first_paint milestone on the first one)."""
        if self._tracer is not None:
            if self.timeline.first_paint is None:
                self._tracer.milestone("first_paint")
            self._tracer.paint(weight, source)
        self.timeline.record_paint(self.sim.now, weight, source)

    # ------------------------------------------------------------------
    # load completion
    # ------------------------------------------------------------------
    def _check_onload(self) -> None:
        if self._onload_fired or not self._parser_done:
            return
        for fetch in self._fetches.values():
            if not fetch.complete and not fetch.cancelled:
                return
        for fetch in self._deferred_scripts:
            if not fetch.executed:
                return
        if not self.main_thread.idle:
            # The main thread re-invokes this check when it drains.
            return
        self._onload_fired = True
        self.timeline.onload = self.sim.now
        if self._tracer is not None:
            self._tracer.milestone("onload")
        # Late render start for pages with no paintable content yet.
        self._maybe_start_render()


def _parse_link_preloads(headers) -> List[str]:
    """Extract ``link: <url>; rel=preload`` hints from response headers."""
    hints: List[str] = []
    for name, value in headers:
        if name.lower() != "link" or "rel=preload" not in value:
            continue
        start = value.find("<")
        end = value.find(">", start + 1)
        if start != -1 and end != -1:
            hints.append(value[start + 1 : end])
    return hints


#: Sentinel marking the parser as blocked on an inline script.
_INLINE_SENTINEL = _Fetch("inline:", ResourceType.JS)

#: Token offset meaning "no CSSOM dependency yet" for preload-initiated
#: stylesheet fetches (larger than any real document offset).
_NO_CSSOM_OFFSET = 1 << 30

#: ``as`` destination -> resource class for generic preload tokens.
_PRELOAD_AS_TYPES = {
    "style": ResourceType.CSS,
    "script": ResourceType.JS,
    "image": ResourceType.IMAGE,
    "fetch": ResourceType.OTHER,
}


def _css_child_weight(source: str, url: str) -> float:
    """Read the ``/*vw:N*/`` annotation following a CSS reference."""
    import re

    pattern = re.escape(url) + r"\);\s*/\*vw:([0-9.]+)\*/"
    match = re.search(pattern, source)
    return float(match.group(1)) if match else 0.0
