"""HAR (HTTP Archive) export of replayed page loads.

browsertime — the driver the paper uses to automate Chromium (§4.1) —
emits HAR files per run; downstream tooling (waterfalls, WebPageTest
comparisons) consumes them.  This module renders a completed
:class:`~repro.replay.testbed.PageLoadResult` into a HAR 1.2 dictionary
so the simulated loads plug into the same analysis pipelines.

Only fields the model genuinely knows are emitted; nothing is invented.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..replay.testbed import PageLoadResult

#: Fixed origin for relative timestamps (HAR wants ISO dates; the
#: simulation has no wall-clock, so runs start at a fixed instant).
_EPOCH = "2018-02-01T10:00:00.000Z"


def to_har(result: PageLoadResult) -> Dict:
    """Render one page load as a HAR 1.2 dictionary."""
    timeline = result.timeline
    entries: List[Dict] = []
    for url, resource in sorted(
        timeline.resources.items(), key=lambda kv: kv[1].requested_at or 0.0
    ):
        started = resource.requested_at or 0.0
        finished = resource.finished_at or started
        wait = (
            (resource.response_start - started)
            if resource.response_start is not None
            else 0.0
        )
        receive = max(finished - started - wait, 0.0)
        entries.append(
            {
                "startedDateTime": _EPOCH,
                "_startedOffsetMs": round(started, 3),
                "time": round(finished - started, 3),
                "request": {
                    "method": "GET",
                    "url": url,
                    "httpVersion": "HTTP/2",
                    "headers": [],
                    "headersSize": -1,
                    "bodySize": 0,
                },
                "response": {
                    "status": 200,
                    "statusText": "OK",
                    "httpVersion": "HTTP/2",
                    "headers": [],
                    "content": {
                        "size": resource.size,
                        "mimeType": resource.rtype.value,
                    },
                    "headersSize": -1,
                    "bodySize": resource.size,
                },
                "cache": {},
                "timings": {
                    "send": 0.0,
                    "wait": round(wait, 3),
                    "receive": round(receive, 3),
                },
                "_fromCache": resource.from_cache,
                "_wasPushed": resource.pushed,
            }
        )
    onload = (
        timeline.onload - timeline.navigation_start
        if timeline.onload is not None
        else -1
    )
    return {
        "log": {
            "version": "1.2",
            "creator": {"name": "repro", "version": "1.0.0"},
            "pages": [
                {
                    "startedDateTime": _EPOCH,
                    "id": result.site,
                    "title": result.site,
                    "pageTimings": {
                        "onContentLoad": (
                            round(
                                timeline.dom_content_loaded
                                - timeline.navigation_start,
                                3,
                            )
                            if timeline.dom_content_loaded is not None
                            else -1
                        ),
                        "onLoad": round(onload, 3),
                        "_firstPaint": (
                            round(timeline.first_paint - timeline.navigation_start, 3)
                            if timeline.first_paint is not None
                            else -1
                        ),
                        "_speedIndex": round(result.speed_index_ms, 3),
                        "_plt": round(result.plt_ms, 3),
                    },
                }
            ],
            "entries": entries,
            "_pushSummary": {
                "received": timeline.pushes_received,
                "adopted": timeline.pushes_adopted,
                "cancelled": timeline.pushes_cancelled,
                "pushedBytes": result.pushed_bytes,
            },
        }
    }


def save_har(result: PageLoadResult, path) -> None:
    """Write the HAR to disk (UTF-8 JSON)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_har(result), handle, indent=2)
