"""The browser's single main thread.

HTML parsing, CSS parsing, and JavaScript execution all compete for one
thread.  This is the mechanism behind the paper's s5 case study: a
computation-bound page gains nothing from push because the main thread,
not the network, is the bottleneck.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from ..sim import Simulator


class MainThread:
    """A FIFO task executor with simulated busy time."""

    def __init__(self, sim: Simulator, rng=None, jitter: float = 0.0):
        self._sim = sim
        self._queue: Deque[Tuple[float, Callable[[], None], str]] = deque()
        self._running = False
        self._rng = rng
        self._jitter = jitter
        self.busy_ms = 0.0
        self.tasks_run = 0
        #: Invoked whenever the queue drains completely.
        self.on_idle: Optional[Callable[[], None]] = None

    def submit(self, duration_ms: float, on_done: Callable[[], None], label: str = "") -> None:
        """Queue a task occupying the thread for ``duration_ms``."""
        if duration_ms < 0:
            raise ValueError("task duration must be non-negative")
        self._queue.append((duration_ms, on_done, label))
        self._maybe_run()

    @property
    def idle(self) -> bool:
        return not self._running and not self._queue

    @property
    def pending_tasks(self) -> int:
        return len(self._queue) + (1 if self._running else 0)

    def _maybe_run(self) -> None:
        if self._running or not self._queue:
            return
        duration, on_done, _label = self._queue.popleft()
        if self._jitter > 0 and self._rng is not None and duration > 0:
            # Client-side processing noise: the residual variance the
            # paper still sees in the deterministic testbed (Fig. 2a).
            duration *= 1.0 + self._rng.uniform(-self._jitter, self._jitter)
        self._running = True
        self.busy_ms += duration
        self.tasks_run += 1

        def finish() -> None:
            self._running = False
            on_done()
            self._maybe_run()
            if self.idle and self.on_idle is not None:
                self.on_idle()

        self._sim.schedule(duration, finish)
