"""The browser model (Chromium-64-like critical rendering path)."""

from .cache import BrowserCache
from .engine import BrowserConfig, PageLoad
from .har import save_har, to_har
from .waterfall import render_waterfall
from .main_thread import MainThread
from .priorities import (
    WEIGHT_ASYNC_JS,
    WEIGHT_CSS,
    WEIGHT_FONT,
    WEIGHT_IMAGE,
    WEIGHT_MAIN,
    WEIGHT_OTHER,
    WEIGHT_SYNC_JS,
    weight_for,
)
from .timings import PageTimeline, PaintEvent, RequestTrace

__all__ = [
    "BrowserCache",
    "BrowserConfig",
    "MainThread",
    "PageLoad",
    "PageTimeline",
    "PaintEvent",
    "RequestTrace",
    "WEIGHT_ASYNC_JS",
    "WEIGHT_CSS",
    "WEIGHT_FONT",
    "WEIGHT_IMAGE",
    "WEIGHT_MAIN",
    "WEIGHT_OTHER",
    "WEIGHT_SYNC_JS",
    "render_waterfall",
    "save_har",
    "to_har",
    "weight_for",
]
