"""Chromium-like request priorities mapped to HTTP/2 weights.

The paper's case studies hinge on the browser's priority behaviour:
Chromium gives the base document the highest priority, so an h2o server
honouring stream weights sends *the entire HTML before the CSS* (w1,
§5) — exactly the behaviour interleaving push overrides.

Subresources requested while the main document stream is still open are
made dependents of that stream, mirroring how Chromium builds its
dependency chain off the main resource; the server's priority-tree
scheduler therefore drains the HTML before any child stream.
"""

from __future__ import annotations

from ..html.resources import ResourceType

#: HTTP/2 weight of the main document stream (Chromium: Highest).
WEIGHT_MAIN = 256

#: Weights per resource class, Chromium bucket equivalents.
WEIGHT_CSS = 220       # render-blocking stylesheet (High)
WEIGHT_FONT = 220      # fonts block text paint (High)
WEIGHT_SYNC_JS = 183   # parser-blocking script (Medium)
WEIGHT_ASYNC_JS = 147  # async/defer script (Low)
WEIGHT_IMAGE = 110     # images (Lowest)
WEIGHT_OTHER = 110


def weight_for(rtype: ResourceType, is_async: bool = False) -> int:
    """The H2 weight a Chromium-like client assigns to a request."""
    if rtype == ResourceType.HTML:
        return WEIGHT_MAIN
    if rtype == ResourceType.CSS:
        return WEIGHT_CSS
    if rtype == ResourceType.FONT:
        return WEIGHT_FONT
    if rtype == ResourceType.JS:
        return WEIGHT_ASYNC_JS if is_async else WEIGHT_SYNC_JS
    if rtype == ResourceType.IMAGE:
        return WEIGHT_IMAGE
    return WEIGHT_OTHER
