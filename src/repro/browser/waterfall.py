"""ASCII waterfall rendering of a replayed page load.

The classic way to read a page load — and the way the paper's authors
inspected why a strategy helped or hurt (§4.3, §5: "based on inspection
of the rendering process") — is a request waterfall.  This renders one
from a :class:`~repro.replay.testbed.PageLoadResult`:

::

    https://w.example/            |█████████░░░░░░░░░░           | 420ms
    https://w.example/a.css       |    ▒▒▒███████                | 310ms  PUSH

``▒`` marks wait (request issued, first byte pending), ``█`` transfer,
and markers show first paint (P) and onload (L).
"""

from __future__ import annotations

from typing import List

from ..replay.testbed import PageLoadResult

#: Characters per rendered timeline.
DEFAULT_WIDTH = 60


def render_waterfall(result: PageLoadResult, width: int = DEFAULT_WIDTH) -> str:
    """Render the load as a fixed-width ASCII waterfall."""
    timeline = result.timeline
    resources = [
        r for r in timeline.resources.values() if r.requested_at is not None
    ]
    if not resources:
        return "(no resources)"
    start = timeline.navigation_start
    end = max(r.finished_at or r.requested_at for r in resources)
    if timeline.onload is not None:
        end = max(end, timeline.onload)
    span = max(end - start, 1e-9)

    def column(time: float) -> int:
        return min(int((time - start) / span * width), width - 1)

    lines: List[str] = []
    label_width = max(len(_label(r.url)) for r in resources)
    label_width = min(max(label_width, 10), 44)
    for resource in sorted(resources, key=lambda r: r.requested_at):
        bar = [" "] * width
        first_byte = resource.response_start or resource.requested_at
        finished = resource.finished_at or first_byte
        for index in range(column(resource.requested_at), column(first_byte) + 1):
            bar[index] = "▒"  # wait
        for index in range(column(first_byte), column(finished) + 1):
            bar[index] = "█"  # transfer
        flags = []
        if resource.pushed:
            flags.append("PUSH")
        if resource.from_cache:
            flags.append("CACHE")
        duration = (resource.finished_at or first_byte) - resource.requested_at
        lines.append(
            f"{_label(resource.url):<{label_width}} |{''.join(bar)}| "
            f"{duration:6.0f}ms {' '.join(flags)}".rstrip()
        )
    markers = [" "] * width
    if timeline.first_paint is not None:
        markers[column(timeline.first_paint)] = "P"
    if timeline.onload is not None:
        markers[column(timeline.onload)] = "L"
    lines.append(f"{'P=first paint, L=onload':<{label_width}} |{''.join(markers)}|")
    lines.append(
        f"{'':<{label_width}}  0ms{'':>{max(width - 14, 0)}}{span:7.0f}ms"
    )
    return "\n".join(lines)


def _label(url: str) -> str:
    tail = url.split("://", 1)[-1]
    if len(tail) > 44:
        tail = "…" + tail[-43:]
    return tail
