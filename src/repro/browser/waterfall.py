"""ASCII waterfall rendering of a replayed page load.

The classic way to read a page load — and the way the paper's authors
inspected why a strategy helped or hurt (§4.3, §5: "based on inspection
of the rendering process") — is a request waterfall.  This renders one
from a :class:`~repro.replay.testbed.PageLoadResult`:

::

    https://w.example/            |█████████░░░░░░░░░░           | 420ms
    https://w.example/a.css       |    ▒▒▒███████                | 310ms  PUSH

``▒`` marks wait (request issued, first byte pending), ``█`` transfer,
and markers show first paint (P) and onload (L).

Two front ends share one renderer: :func:`render_waterfall` reads the
browser's :class:`~repro.browser.timings.PageTimeline` (the historical
path, byte-identical output), and :func:`render_waterfall_from_trace`
reconstructs the same rows from a :class:`repro.trace.core.Trace` event
stream — which additionally knows about *rejected* pushes, rendered as
zero-duration rows so a wasted PUSH_PROMISE is visible in the picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..replay.testbed import PageLoadResult

#: Characters per rendered timeline.
DEFAULT_WIDTH = 60


@dataclass
class WaterfallRow:
    """One renderable resource timeline, whichever front end built it."""

    url: str
    requested_at: float
    response_start: Optional[float] = None
    finished_at: Optional[float] = None
    pushed: bool = False
    from_cache: bool = False
    #: A push the client refused (reset); rendered as a zero-duration
    #: row so the wasted promise still shows up in the waterfall.
    rejected: bool = False
    reject_reason: str = ""

    def flags(self) -> List[str]:
        flags: List[str] = []
        if self.pushed:
            flags.append("PUSH")
        if self.from_cache:
            flags.append("CACHE")
        if self.rejected:
            reason = f"({self.reject_reason})" if self.reject_reason else ""
            flags.append(f"REJECTED{reason}")
        return flags


def render_waterfall(result: PageLoadResult, width: int = DEFAULT_WIDTH) -> str:
    """Render the load as a fixed-width ASCII waterfall."""
    timeline = result.timeline
    rows = [
        WaterfallRow(
            url=r.url,
            requested_at=r.requested_at,
            response_start=r.response_start,
            finished_at=r.finished_at,
            pushed=r.pushed,
            from_cache=r.from_cache,
        )
        for r in timeline.resources.values()
        if r.requested_at is not None
    ]
    return render_rows(
        rows,
        navigation_start=timeline.navigation_start,
        first_paint=timeline.first_paint,
        onload=timeline.onload,
        width=width,
    )


def render_waterfall_from_trace(trace, width: int = DEFAULT_WIDTH) -> str:
    """Render a waterfall from a trace event stream instead of a result.

    Consumes ``ResourceRequested``/``ResourceResponse``/
    ``ResourceFinished``/``PushRejected``/``Milestone`` events; every
    other event type is ignored, so any tracer output (full or
    ring-truncated) renders.
    """
    rows, navigation_start, first_paint, onload = rows_from_trace(trace)
    return render_rows(
        rows,
        navigation_start=navigation_start,
        first_paint=first_paint,
        onload=onload,
        width=width,
    )


def rows_from_trace(trace):
    """Extract waterfall rows + milestones from a trace.

    Returns ``(rows, navigation_start, first_paint, onload)``.  Shared
    by the waterfall renderer and the trace CLI; the first event of each
    kind wins per URL, matching how the browser timeline records them.
    """
    from ..trace.core import (
        Milestone,
        PushRejected,
        ResourceFinished,
        ResourceRequested,
        ResourceResponse,
    )

    rows: List[WaterfallRow] = []
    by_url: Dict[str, WaterfallRow] = {}
    navigation_start = 0.0
    first_paint: Optional[float] = None
    onload: Optional[float] = None
    for event in trace.events:
        if type(event) is ResourceRequested:
            if event.url not in by_url:
                row = WaterfallRow(
                    url=event.url, requested_at=event.t, pushed=event.pushed
                )
                by_url[event.url] = row
                rows.append(row)
        elif type(event) is ResourceResponse:
            row = by_url.get(event.url)
            if row is not None and row.response_start is None:
                row.response_start = event.t
        elif type(event) is ResourceFinished:
            row = by_url.get(event.url)
            if row is not None and row.finished_at is None:
                row.finished_at = event.t
                row.pushed = row.pushed or event.pushed
                row.from_cache = row.from_cache or event.from_cache
        elif type(event) is PushRejected:
            rows.append(
                WaterfallRow(
                    url=event.url,
                    requested_at=event.t,
                    pushed=True,
                    rejected=True,
                    reject_reason=event.reason,
                )
            )
        elif type(event) is Milestone:
            if event.milestone == "navigation_start":
                navigation_start = event.t
            elif event.milestone == "first_paint" and first_paint is None:
                first_paint = event.t
            elif event.milestone == "onload" and onload is None:
                onload = event.t
    return rows, navigation_start, first_paint, onload


def render_rows(
    rows: List[WaterfallRow],
    navigation_start: float,
    first_paint: Optional[float],
    onload: Optional[float],
    width: int = DEFAULT_WIDTH,
) -> str:
    """The shared fixed-width renderer behind both front ends."""
    if not rows:
        return "(no resources)"
    start = navigation_start
    end = max(r.finished_at or r.requested_at for r in rows)
    if onload is not None:
        end = max(end, onload)
    span = max(end - start, 1e-9)

    def column(time: float) -> int:
        return min(int((time - start) / span * width), width - 1)

    lines: List[str] = []
    label_width = max(len(_label(r.url)) for r in rows)
    label_width = min(max(label_width, 10), 44)
    for row in sorted(rows, key=lambda r: r.requested_at):
        bar = [" "] * width
        first_byte = row.response_start or row.requested_at
        finished = row.finished_at or first_byte
        for index in range(column(row.requested_at), column(first_byte) + 1):
            bar[index] = "▒"  # wait
        for index in range(column(first_byte), column(finished) + 1):
            bar[index] = "█"  # transfer
        duration = (row.finished_at or first_byte) - row.requested_at
        lines.append(
            f"{_label(row.url):<{label_width}} |{''.join(bar)}| "
            f"{duration:6.0f}ms {' '.join(row.flags())}".rstrip()
        )
    markers = [" "] * width
    if first_paint is not None:
        markers[column(first_paint)] = "P"
    if onload is not None:
        markers[column(onload)] = "L"
    lines.append(f"{'P=first paint, L=onload':<{label_width}} |{''.join(markers)}|")
    lines.append(
        f"{'':<{label_width}}  0ms{'':>{max(width - 14, 0)}}{span:7.0f}ms"
    )
    return "\n".join(lines)


def _label(url: str) -> str:
    tail = url.split("://", 1)[-1]
    if len(tail) > 44:
        tail = "…" + tail[-43:]
    return tail
