"""Navigation timing and paint trace for one page load.

Mirrors the parts of the W3C Navigation Timing API the paper uses: PLT
is defined as ``connectEnd`` to the start of ``onload`` (§2.2), and the
paint trace is the input to SpeedIndex.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..html.resources import FetchedResource


@dataclass(slots=True)
class PaintEvent:
    """A visual change: ``weight`` units of ATF content became visible."""

    time: float
    weight: float
    source: str  # what painted (url or "text")


@dataclass(slots=True)
class RequestTrace:
    """One request as traced for push-order computation (§4.2)."""

    url: str
    requested_at: float
    weight: int
    pushed: bool
    initiator: str  # "navigation" | "parser" | "preload" | "css" | "js" | "push"
    #: URL of the resource whose content triggered this request (for
    #: css/js-discovered children); None for document-discovered ones.
    initiator_url: Optional[str] = None


@dataclass(slots=True)
class PageTimeline:
    """Everything measured during one page load."""

    navigation_start: float = 0.0
    connect_end: Optional[float] = None
    first_paint: Optional[float] = None
    dom_content_loaded: Optional[float] = None
    onload: Optional[float] = None

    paints: List[PaintEvent] = field(default_factory=list)
    requests: List[RequestTrace] = field(default_factory=list)
    resources: Dict[str, FetchedResource] = field(default_factory=dict)

    #: Push bookkeeping.
    pushes_received: int = 0
    pushes_adopted: int = 0
    pushes_cancelled: int = 0
    pushed_bytes: int = 0

    def record_paint(self, time: float, weight: float, source: str) -> None:
        if weight <= 0:
            return
        self.paints.append(PaintEvent(time=time, weight=weight, source=source))
        if self.first_paint is None:
            self.first_paint = time

    @property
    def plt_ms(self) -> float:
        """Page Load Time: connectEnd to onload, the paper's definition."""
        if self.onload is None or self.connect_end is None:
            raise ValueError("page load did not complete")
        return self.onload - self.connect_end

    @property
    def total_painted_weight(self) -> float:
        return sum(event.weight for event in self.paints)

    def visual_progress(self) -> List[Tuple[float, float]]:
        """Cumulative (time, completeness in [0, 1]) steps.

        Times are relative to ``connect_end`` so SpeedIndex shares the
        PLT time base.
        """
        total = self.total_painted_weight
        if total <= 0 or self.connect_end is None:
            return []
        steps = []
        cumulative = 0.0
        for event in sorted(self.paints, key=lambda e: e.time):
            cumulative += event.weight
            steps.append((event.time - self.connect_end, cumulative / total))
        return steps

    def request_order(self) -> List[str]:
        """URLs in the order the browser issued them (for §4.2 orders)."""
        ordered = sorted(self.requests, key=lambda r: (r.requested_at, r.url))
        return [r.url for r in ordered]
