"""Unit helpers used throughout the package.

The simulator's base units are **milliseconds** for time and **bytes**
for data.  Bandwidths are stored in bytes per millisecond.  These helpers
exist so call sites read like the paper ("16 Mbit/s downlink, 50 ms
RTT") instead of carrying raw conversion factors around.
"""

from __future__ import annotations

#: Number of bytes in a kilobyte / megabyte (SI, as used by the paper).
KB = 1000
MB = 1000 * 1000

#: Binary variants, used for buffer sizes.
KIB = 1024
MIB = 1024 * 1024


def mbit_per_s(mbit: float) -> float:
    """Convert a bandwidth in Mbit/s to bytes per millisecond."""
    return mbit * 1_000_000 / 8 / 1000


def kbit_per_s(kbit: float) -> float:
    """Convert a bandwidth in kbit/s to bytes per millisecond."""
    return kbit * 1000 / 8 / 1000


def bytes_per_ms_to_mbit(rate: float) -> float:
    """Convert bytes per millisecond back to Mbit/s (for reporting)."""
    return rate * 1000 * 8 / 1_000_000


def seconds(s: float) -> float:
    """Convert seconds to milliseconds."""
    return s * 1000.0


def ms(value: float) -> float:
    """Identity helper; documents that a literal is in milliseconds."""
    return float(value)


def transmission_delay_ms(size_bytes: int, rate_bytes_per_ms: float) -> float:
    """Time to serialize ``size_bytes`` onto a link of the given rate."""
    if rate_bytes_per_ms <= 0:
        raise ValueError("rate must be positive")
    return size_bytes / rate_bytes_per_ms


def require_positive(name: str, value: float) -> float:
    """Validate that a configuration quantity is strictly positive.

    Raises :class:`repro.errors.ConfigError` so profile mistakes (zero
    MSS, zero bandwidth) surface at construction time instead of as
    divide-by-zero or silent stalls deep inside the simulator.
    """
    from .errors import ConfigError

    if not value > 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Validate that a quantity (delay, jitter) is zero or positive."""
    from .errors import ConfigError

    if not value >= 0:
        raise ConfigError(f"{name} must be non-negative, got {value!r}")
    return value


def require_fraction(name: str, value: float) -> float:
    """Validate that a probability/ratio lies in the closed [0, 1]."""
    from .errors import ConfigError

    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be within [0, 1], got {value!r}")
    return value


def require_choice(name: str, value: str, choices) -> str:
    """Validate that a named knob is one of an enumerated set.

    Used for registry-style configuration strings (transport names,
    congestion controllers) so a typo fails at construction time with
    the available options listed, not as an attribute error mid-run.
    """
    from .errors import ConfigError

    if value not in choices:
        raise ConfigError(
            f"unknown {name} {value!r} "
            f"(available: {', '.join(sorted(choices))})"
        )
    return value


def fmt_kb(size_bytes: float) -> str:
    """Format a byte count as the paper does, e.g. ``'309 KB'``."""
    return f"{size_bytes / KB:,.0f} KB"


def fmt_ms(value: float) -> str:
    """Format a duration in milliseconds for report output."""
    return f"{value:,.0f} ms"
