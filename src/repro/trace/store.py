"""Checksummed on-disk trace artifacts, stored beside the result cache.

Per-run qlog exports are written under ``<dir>/traces/<key[:2]>/
<key>.run<N>.qlog`` where ``key`` is the owning cell's content-address
(:meth:`Cell.key`).  Artifacts use the same durability discipline as
the PR 4 result cache: a magic + SHA-256 + payload framing, written to
a temp file, fsynced, and atomically renamed into place; corrupt or
foreign files are quarantined as ``*.corrupt`` and treated as missing
so the engine simply re-traces the run (recomputation is bit-identical
by the determinism contract).

This module deliberately re-implements the tiny atomic-write helper
instead of importing :mod:`repro.experiments.engine.cache`: the trace
package sits below the experiment engine in the dependency graph
(``engine.cell`` imports :class:`TraceSpec`), so importing upward
would create a cycle.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

TRACE_MAGIC = b"RPTR1\n"
_DIGEST_SIZE = 32


@dataclass(frozen=True)
class TraceSpec:
    """Cell-level opt-in: where to store per-run trace artifacts.

    Attached to :class:`repro.experiments.engine.Cell` via its
    ``trace=`` field; deliberately **excluded** from the cell cache key
    so turning tracing on or off never changes which cached results a
    grid hits.
    """

    #: Root directory; artifacts land under ``<dir>/traces/``.
    dir: str
    #: Ring capacity for the binary sink; ``None`` keeps every event
    #: (ListSink).  Long grids can bound memory per run with this.
    ring_capacity: Optional[int] = None


class TraceStore:
    """Load/store per-run qlog artifacts with integrity checking."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def path(self, key: str, run_index: int) -> Path:
        return self.root / "traces" / key[:2] / f"{key}.run{run_index}.qlog"

    def store(self, key: str, run_index: int, payload: bytes) -> Path:
        path = self.path(key, run_index)
        digest = hashlib.sha256(payload).digest()
        _atomic_write(path, TRACE_MAGIC + digest + payload)
        return path

    def load(self, key: str, run_index: int) -> Optional[bytes]:
        """Return the artifact payload, or ``None`` if absent/corrupt."""
        path = self.path(key, run_index)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        payload = self._validate(raw)
        if payload is None:
            self._quarantine(path)
            return None
        return payload

    def has(self, key: str, run_index: int) -> bool:
        return self.load(key, run_index) is not None

    def has_all(self, key: str, runs: int) -> bool:
        return all(self.has(key, run_index) for run_index in range(runs))

    @staticmethod
    def _validate(raw: bytes) -> Optional[bytes]:
        header = len(TRACE_MAGIC) + _DIGEST_SIZE
        if len(raw) < header or not raw.startswith(TRACE_MAGIC):
            return None
        digest = raw[len(TRACE_MAGIC) : header]
        payload = raw[header:]
        if hashlib.sha256(payload).digest() != digest:
            return None
        return payload

    @staticmethod
    def _quarantine(path: Path) -> None:
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            pass


def _atomic_write(path: Path, data: bytes) -> None:
    """tmp + fsync + rename, same discipline as the result cache."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
