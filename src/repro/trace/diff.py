"""Trace alignment and strategy diagnosis.

:func:`diff_traces` aligns two traces of the **same site** loaded under
different push strategies and answers the question the paper answered
by eyeballing waterfalls (§4.3, §5): *where* did the two loads diverge,
and what did that cost per resource?

The diagnosis has three parts:

* the first divergent event — structural (different event sequence,
  e.g. the first PUSH_PROMISE) or, when both runs have the same wire
  structure, the first timing divergence;
* a per-resource delta table (request/finish times under A vs B);
* push accounting: bytes pushed before the parser demanded the
  resource (speculative, possibly wasted) and pushes rejected outright.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .core import (
    Milestone,
    PushData,
    PushRejected,
    ResourceFinished,
    ResourceRequested,
    Trace,
    TraceEvent,
)

_MILESTONES = (
    "navigation_start",
    "connect_end",
    "first_paint",
    "dom_content_loaded",
    "onload",
)


@dataclass
class Divergence:
    """First point where the two traces stop agreeing."""

    index: int
    kind: str  # "structural" | "timing" | "length"
    a: Optional[str]
    b: Optional[str]


@dataclass
class ResourceDelta:
    url: str
    a_requested: Optional[float] = None
    a_finished: Optional[float] = None
    b_requested: Optional[float] = None
    b_finished: Optional[float] = None
    a_pushed: bool = False
    b_pushed: bool = False
    notes: List[str] = field(default_factory=list)

    @property
    def delta_finished(self) -> Optional[float]:
        if self.a_finished is None or self.b_finished is None:
            return None
        return self.a_finished - self.b_finished


@dataclass
class TraceDiff:
    site: str
    strategy_a: str
    strategy_b: str
    milestones: List[Tuple[str, Optional[float], Optional[float]]]
    divergence: Optional[Divergence]
    resources: List[ResourceDelta]
    push_bytes_before_demand_a: int
    push_bytes_before_demand_b: int
    pushes_rejected_a: int
    pushes_rejected_b: int
    events_a: int
    events_b: int


def describe_event(event: TraceEvent) -> str:
    """One-line human rendering of an event (stable field order)."""
    payload = " ".join(f"{name}={value}" for name, value in event.data().items())
    return f"{event.qlog_name} {payload} (t={event.t:.3f}ms)".rstrip()


# ----------------------------------------------------------------------


def _milestone_times(trace: Trace) -> Dict[str, float]:
    times: Dict[str, float] = {}
    for event in trace.events:
        if isinstance(event, Milestone) and event.milestone not in times:
            times[event.milestone] = event.t
    return times


def _resource_times(trace: Trace) -> Dict[str, Tuple[Optional[float], Optional[float], bool]]:
    """url -> (first requested_at, first finished_at, pushed)."""
    table: Dict[str, Tuple[Optional[float], Optional[float], bool]] = {}
    for event in trace.events:
        if isinstance(event, ResourceRequested):
            requested, finished, pushed = table.get(event.url, (None, None, False))
            if requested is None:
                table[event.url] = (event.t, finished, pushed or event.pushed)
        elif isinstance(event, ResourceFinished):
            requested, finished, pushed = table.get(event.url, (None, None, False))
            if finished is None:
                table[event.url] = (requested, event.t, pushed or event.pushed)
    return table


def _rejected_pushes(trace: Trace) -> Dict[str, str]:
    return {
        event.url: event.reason
        for event in trace.events
        if isinstance(event, PushRejected)
    }


def _push_bytes_before_demand(trace: Trace) -> int:
    return sum(
        event.size
        for event in trace.events
        if isinstance(event, PushData) and event.before_demand
    )


def _first_divergence(a: Trace, b: Trace) -> Optional[Divergence]:
    common = min(len(a.events), len(b.events))
    for index in range(common):
        ea, eb = a.events[index], b.events[index]
        if ea.signature() != eb.signature():
            return Divergence(
                index, "structural", describe_event(ea), describe_event(eb)
            )
    if len(a.events) != len(b.events):
        longer = a.events if len(a.events) > len(b.events) else b.events
        extra = describe_event(longer[common])
        return Divergence(
            common,
            "length",
            extra if longer is a.events else None,
            extra if longer is b.events else None,
        )
    for index in range(common):
        ea, eb = a.events[index], b.events[index]
        if abs(ea.t - eb.t) > 1e-9:
            return Divergence(index, "timing", describe_event(ea), describe_event(eb))
    return None


def diff_traces(a: Trace, b: Trace) -> TraceDiff:
    """Align two traces of the same site under different strategies."""
    times_a, times_b = _milestone_times(a), _milestone_times(b)
    milestones = [
        (name, times_a.get(name), times_b.get(name))
        for name in _MILESTONES
        if name in times_a or name in times_b
    ]
    res_a, res_b = _resource_times(a), _resource_times(b)
    rejected_a, rejected_b = _rejected_pushes(a), _rejected_pushes(b)

    def _order_key(url: str) -> Tuple[float, str]:
        candidates = [
            t
            for t in (res_a.get(url, (None,))[0], res_b.get(url, (None,))[0])
            if t is not None
        ]
        return (min(candidates) if candidates else float("inf"), url)

    resources: List[ResourceDelta] = []
    # Rejected-only URLs (a push refused before any request) still get a
    # row — a refused promise is exactly the waste worth diagnosing.
    seen_a = set(res_a) | set(rejected_a)
    seen_b = set(res_b) | set(rejected_b)
    for url in sorted(seen_a | seen_b, key=_order_key):
        ra = res_a.get(url, (None, None, False))
        rb = res_b.get(url, (None, None, False))
        delta = ResourceDelta(
            url=url,
            a_requested=ra[0],
            a_finished=ra[1],
            b_requested=rb[0],
            b_finished=rb[1],
            a_pushed=ra[2],
            b_pushed=rb[2],
        )
        if url not in seen_b:
            delta.notes.append("only under A")
        if url not in seen_a:
            delta.notes.append("only under B")
        if url in rejected_a:
            delta.notes.append(f"push rejected under A ({rejected_a[url]})")
        if url in rejected_b:
            delta.notes.append(f"push rejected under B ({rejected_b[url]})")
        resources.append(delta)

    return TraceDiff(
        site=str(a.meta.get("site", b.meta.get("site", ""))),
        strategy_a=str(a.meta.get("strategy", "A")),
        strategy_b=str(b.meta.get("strategy", "B")),
        milestones=milestones,
        divergence=_first_divergence(a, b),
        resources=resources,
        push_bytes_before_demand_a=_push_bytes_before_demand(a),
        push_bytes_before_demand_b=_push_bytes_before_demand(b),
        pushes_rejected_a=len(rejected_a),
        pushes_rejected_b=len(rejected_b),
        events_a=len(a.events),
        events_b=len(b.events),
    )


# ----------------------------------------------------------------------


def _fmt_ms(value: Optional[float]) -> str:
    return f"{value:9.1f}" if value is not None else "        —"


def render_diff(diff: TraceDiff, max_resources: int = 40) -> str:
    """Human-readable diagnosis of a :class:`TraceDiff`."""
    lines: List[str] = []
    lines.append(
        f"trace diff: {diff.site or '(site)'} — "
        f"A={diff.strategy_a} vs B={diff.strategy_b} "
        f"({diff.events_a} vs {diff.events_b} events)"
    )
    if diff.milestones:
        lines.append("milestones (ms):")
        for name, ta, tb in diff.milestones:
            delta = (
                f"  Δ {ta - tb:+9.1f}" if ta is not None and tb is not None else ""
            )
            lines.append(
                f"  {name:<20} A {_fmt_ms(ta)}   B {_fmt_ms(tb)}{delta}"
            )
    if diff.divergence is None:
        lines.append("traces are identical (no divergent event)")
    else:
        div = diff.divergence
        lines.append(f"first divergence: event #{div.index} ({div.kind})")
        lines.append(f"  A: {div.a if div.a is not None else '(no further events)'}")
        lines.append(f"  B: {div.b if div.b is not None else '(no further events)'}")
    lines.append(
        "push bytes before demand: "
        f"A {diff.push_bytes_before_demand_a}   B {diff.push_bytes_before_demand_b}"
    )
    if diff.pushes_rejected_a or diff.pushes_rejected_b:
        lines.append(
            f"pushes rejected: A {diff.pushes_rejected_a}   B {diff.pushes_rejected_b}"
        )
    if diff.resources:
        lines.append("per-resource finish times (ms):")
        lines.append(f"  {'resource':<44} {'A-finish':>9} {'B-finish':>9} {'Δ':>9}")
        for delta in diff.resources[:max_resources]:
            label = delta.url if len(delta.url) <= 44 else "…" + delta.url[-43:]
            d = delta.delta_finished
            flags = []
            if delta.a_pushed:
                flags.append("A:push")
            if delta.b_pushed:
                flags.append("B:push")
            flags.extend(delta.notes)
            suffix = ("  " + "; ".join(flags)) if flags else ""
            lines.append(
                f"  {label:<44} {_fmt_ms(delta.a_finished)} "
                f"{_fmt_ms(delta.b_finished)} "
                f"{f'{d:+9.1f}' if d is not None else '        —'}{suffix}"
            )
        if len(diff.resources) > max_resources:
            lines.append(
                f"  … {len(diff.resources) - max_resources} more resources omitted"
            )
    return "\n".join(lines)
