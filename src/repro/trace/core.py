"""Tracer protocol, event taxonomy, and sinks.

Design contract (mirrors DESIGN §10):

* **Determinism.**  Every event is stamped from ``Simulator.now`` — the
  tracer is attached to the simulator at the start of a run and never
  reads wall-clock time.  All instrumentation hooks are read-only:
  they never touch an RNG, never schedule events, and never mutate
  model state, so a traced run is bit-identical to an untraced one.

* **Zero overhead when off.**  Instrumented objects carry a tracer
  attribute defaulting to ``None``; the hot-path cost with tracing off
  is one attribute load and one ``is None`` comparison.  A module-level
  :data:`enabled` flag mirrors whether any tracer is live so coarse
  call sites (and tests) can check globally without holding a tracer.

* **Typed events.**  Each event is a small dataclass with a ``t``
  field (simulated milliseconds) first; the remaining fields are the
  event payload.  ``qlog_name`` gives the qlog-style category:name and
  the field annotations drive the compact binary codec in
  :mod:`repro.trace.qlog`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, List, Optional

#: True while at least one :class:`Tracer` is activated (attached to a
#: live run).  Maintained by :meth:`Tracer.activate`/``deactivate``;
#: purely informational for coarse gates — per-object ``tracer is not
#: None`` checks are the canonical hot-path guard.
enabled = False

_active_tracers = 0


def is_enabled() -> bool:
    """Whether any tracer is currently activated (module-level flag)."""
    return enabled


# ----------------------------------------------------------------------
# Event taxonomy


@dataclass
class TraceEvent:
    """Base class: ``t`` is simulated time in milliseconds."""

    qlog_name: ClassVar[str] = "trace:event"

    t: float

    def data(self) -> Dict[str, Any]:
        """Payload fields (everything but the timestamp)."""
        return {
            f.name: getattr(self, f.name) for f in fields(self) if f.name != "t"
        }

    def signature(self) -> tuple:
        """Time-free identity used for structural trace alignment."""
        return (self.qlog_name,) + tuple(
            getattr(self, f.name) for f in fields(self) if f.name != "t"
        )


# -- HTTP/2 stream lifecycle -------------------------------------------


@dataclass
class StreamOpened(TraceEvent):
    qlog_name: ClassVar[str] = "h2:stream_opened"
    conn: str
    stream_id: int
    pushed: bool


@dataclass
class StreamClosed(TraceEvent):
    qlog_name: ClassVar[str] = "h2:stream_closed"
    conn: str
    stream_id: int


@dataclass
class StreamReset(TraceEvent):
    qlog_name: ClassVar[str] = "h2:stream_reset"
    conn: str
    stream_id: int
    code: str


# -- Frames on the wire ------------------------------------------------


@dataclass
class FrameSent(TraceEvent):
    qlog_name: ClassVar[str] = "h2:frame_sent"
    conn: str
    frame_type: str
    stream_id: int
    size: int


@dataclass
class FrameReceived(TraceEvent):
    qlog_name: ClassVar[str] = "h2:frame_received"
    conn: str
    frame_type: str
    stream_id: int
    size: int


# -- Server push lifecycle ---------------------------------------------


@dataclass
class PushPromised(TraceEvent):
    """Server sent a PUSH_PROMISE reserving ``promised_stream_id``."""

    qlog_name: ClassVar[str] = "push:promised"
    conn: str
    parent_stream_id: int
    promised_stream_id: int


@dataclass
class PushReceived(TraceEvent):
    """Client decoded a PUSH_PROMISE for ``url``."""

    qlog_name: ClassVar[str] = "push:received"
    conn: str
    promised_stream_id: int
    url: str


@dataclass
class PushRejected(TraceEvent):
    """Client cancelled a push (RST_STREAM) instead of accepting it."""

    qlog_name: ClassVar[str] = "push:rejected"
    conn: str
    promised_stream_id: int
    url: str
    reason: str


@dataclass
class PushAdopted(TraceEvent):
    """The parser demanded a resource the server had already pushed."""

    qlog_name: ClassVar[str] = "push:adopted"
    url: str
    stream_id: int


@dataclass
class PushData(TraceEvent):
    """Pushed DATA arrived; ``before_demand`` marks speculative bytes
    received before the parser asked for the resource (the paper's
    wasted-push accounting)."""

    qlog_name: ClassVar[str] = "push:data"
    url: str
    size: int
    before_demand: bool


# -- TCP / congestion control ------------------------------------------


@dataclass
class CwndSample(TraceEvent):
    """Congestion window evolution, sampled after every cc decision."""

    qlog_name: ClassVar[str] = "tcp:cwnd"
    conn: str
    trigger: str
    cwnd: float
    ssthresh: float
    rto_ms: float
    in_flight: int


@dataclass
class Retransmit(TraceEvent):
    qlog_name: ClassVar[str] = "tcp:retransmit"
    conn: str
    seq: int
    kind: str


# -- Link impairments --------------------------------------------------


@dataclass
class PacketDropped(TraceEvent):
    qlog_name: ClassVar[str] = "net:packet_dropped"
    link: str
    packet_index: int


@dataclass
class PacketReordered(TraceEvent):
    qlog_name: ClassVar[str] = "net:packet_reordered"
    link: str
    packet_index: int
    extra_delay_ms: float


# -- Browser-side resource lifecycle -----------------------------------


@dataclass
class CacheHit(TraceEvent):
    qlog_name: ClassVar[str] = "browser:cache_hit"
    url: str
    size: int


@dataclass
class ResourceDiscovered(TraceEvent):
    qlog_name: ClassVar[str] = "browser:resource_discovered"
    url: str
    rtype: str
    initiator: str


@dataclass
class ResourceRequested(TraceEvent):
    qlog_name: ClassVar[str] = "browser:resource_requested"
    url: str
    pushed: bool


@dataclass
class ResourceResponse(TraceEvent):
    qlog_name: ClassVar[str] = "browser:response_start"
    url: str


@dataclass
class ResourceFinished(TraceEvent):
    qlog_name: ClassVar[str] = "browser:resource_finished"
    url: str
    size: int
    pushed: bool
    from_cache: bool


@dataclass
class Milestone(TraceEvent):
    """Page-level milestone: navigation_start, connect_end, first_paint,
    dom_content_loaded, onload."""

    qlog_name: ClassVar[str] = "browser:milestone"
    milestone: str


@dataclass
class Paint(TraceEvent):
    qlog_name: ClassVar[str] = "browser:paint"
    weight: float
    source: str


# -- Push successors (preload / 103 Early Hints / QUIC) -----------------


@dataclass
class EarlyHintsSent(TraceEvent):
    """Server emitted an interim 103 response carrying preload hints."""

    qlog_name: ClassVar[str] = "hints:early_hints_sent"
    conn: str
    stream_id: int
    url_count: int


@dataclass
class EarlyHintsReceived(TraceEvent):
    """Client decoded an interim 103 response before the final one."""

    qlog_name: ClassVar[str] = "hints:early_hints_received"
    conn: str
    stream_id: int
    url_count: int


@dataclass
class PreloadDiscovered(TraceEvent):
    """A preload hint entered the fetch pipeline.  ``source`` is one of
    ``link_tag`` (markup), ``link_header`` (final-response Link
    header), or ``early_hints`` (interim 103)."""

    qlog_name: ClassVar[str] = "hints:preload_discovered"
    url: str
    rtype: str
    source: str


@dataclass
class QuicStreamRecovered(TraceEvent):
    """A retransmission filled a loss gap on one QUIC stream while
    other streams kept delivering — the HoL-blocking contrast with
    TCP, where the gap would have stalled every stream."""

    qlog_name: ClassVar[str] = "quic:stream_recovered"
    conn: str
    stream_id: int
    recovered_bytes: int


#: Stable, ordered registry — the index is the binary event code, so
#: append only; never reorder or remove (it would break stored sinks).
EVENT_TYPES: List[type] = [
    StreamOpened,
    StreamClosed,
    StreamReset,
    FrameSent,
    FrameReceived,
    PushPromised,
    PushReceived,
    PushRejected,
    PushAdopted,
    PushData,
    CwndSample,
    Retransmit,
    PacketDropped,
    PacketReordered,
    CacheHit,
    ResourceDiscovered,
    ResourceRequested,
    ResourceResponse,
    ResourceFinished,
    Milestone,
    Paint,
    EarlyHintsSent,
    EarlyHintsReceived,
    PreloadDiscovered,
    QuicStreamRecovered,
]

EVENT_BY_NAME: Dict[str, type] = {cls.qlog_name: cls for cls in EVENT_TYPES}


# ----------------------------------------------------------------------
# Sinks and the tracer itself


class ListSink:
    """Default in-memory sink: keeps every event, in emission order."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def append(self, event: TraceEvent) -> None:
        self._events.append(event)

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


@dataclass
class Trace:
    """A finished trace: run metadata plus the ordered event list."""

    meta: Dict[str, Any]
    events: List[TraceEvent]


class NullTracer:
    """Explicit no-op tracer (instrumentation treats it like ``None``).

    Exists so call sites can hold a tracer-shaped object
    unconditionally; it records nothing and never activates the
    module-level flag.
    """

    __slots__ = ()

    enabled = False

    def attach(self, sim) -> None:  # pragma: no cover - trivial
        pass

    def activate(self) -> None:
        pass

    def deactivate(self) -> None:
        pass

    def emit(self, event: TraceEvent) -> None:
        pass

    def events(self) -> List[TraceEvent]:
        return []

    def trace(self) -> Trace:
        return Trace(meta={}, events=[])


class Tracer:
    """Collects typed events stamped with simulated time.

    One tracer covers one page load (one :meth:`ReplayTestbed.run`).
    The testbed calls :meth:`attach` with the run's simulator before
    the load starts; all emitters then read ``sim.now``.
    """

    enabled = True

    def __init__(self, sink=None, meta: Optional[Dict[str, Any]] = None):
        self.sink = sink if sink is not None else ListSink()
        self.meta: Dict[str, Any] = dict(meta or {})
        self._sim = None

    # -- lifecycle -----------------------------------------------------
    def attach(self, sim) -> None:
        self._sim = sim

    def activate(self) -> None:
        global enabled, _active_tracers
        _active_tracers += 1
        enabled = True

    def deactivate(self) -> None:
        global enabled, _active_tracers
        _active_tracers = max(0, _active_tracers - 1)
        enabled = _active_tracers > 0

    @property
    def now(self) -> float:
        return self._sim.now if self._sim is not None else 0.0

    def emit(self, event: TraceEvent) -> None:
        self.sink.append(event)

    def events(self) -> List[TraceEvent]:
        return self.sink.events()

    def trace(self) -> Trace:
        return Trace(meta=dict(self.meta), events=self.sink.events())

    # -- typed emitters (hot paths call these behind a None-check) -----
    def stream_opened(self, conn: str, stream_id: int, pushed: bool) -> None:
        self.sink.append(StreamOpened(self.now, conn, stream_id, pushed))

    def stream_closed(self, conn: str, stream_id: int) -> None:
        self.sink.append(StreamClosed(self.now, conn, stream_id))

    def stream_reset(self, conn: str, stream_id: int, code: str) -> None:
        self.sink.append(StreamReset(self.now, conn, stream_id, code))

    def frame_sent(self, conn: str, frame_type: str, stream_id: int, size: int) -> None:
        self.sink.append(FrameSent(self.now, conn, frame_type, stream_id, size))

    def frame_received(self, conn: str, frame_type: str, stream_id: int, size: int) -> None:
        self.sink.append(FrameReceived(self.now, conn, frame_type, stream_id, size))

    def push_promised(self, conn: str, parent_id: int, promised_id: int) -> None:
        self.sink.append(PushPromised(self.now, conn, parent_id, promised_id))

    def push_received(self, conn: str, promised_id: int, url: str) -> None:
        self.sink.append(PushReceived(self.now, conn, promised_id, url))

    def push_rejected(self, conn: str, promised_id: int, url: str, reason: str) -> None:
        self.sink.append(PushRejected(self.now, conn, promised_id, url, reason))

    def push_adopted(self, url: str, stream_id: int) -> None:
        self.sink.append(PushAdopted(self.now, url, stream_id))

    def push_data(self, url: str, size: int, before_demand: bool) -> None:
        self.sink.append(PushData(self.now, url, size, before_demand))

    def cwnd_sample(
        self,
        conn: str,
        trigger: str,
        cwnd: float,
        ssthresh: float,
        rto_ms: float,
        in_flight: int,
    ) -> None:
        self.sink.append(
            CwndSample(self.now, conn, trigger, cwnd, ssthresh, rto_ms, in_flight)
        )

    def retransmit(self, conn: str, seq: int, kind: str) -> None:
        self.sink.append(Retransmit(self.now, conn, seq, kind))

    def packet_dropped(self, link: str, packet_index: int) -> None:
        self.sink.append(PacketDropped(self.now, link, packet_index))

    def packet_reordered(self, link: str, packet_index: int, extra_delay_ms: float) -> None:
        self.sink.append(PacketReordered(self.now, link, packet_index, extra_delay_ms))

    def cache_hit(self, url: str, size: int) -> None:
        self.sink.append(CacheHit(self.now, url, size))

    def resource_discovered(self, url: str, rtype: str, initiator: str) -> None:
        self.sink.append(ResourceDiscovered(self.now, url, rtype, initiator))

    def resource_requested(self, url: str, pushed: bool) -> None:
        self.sink.append(ResourceRequested(self.now, url, pushed))

    def resource_response(self, url: str) -> None:
        self.sink.append(ResourceResponse(self.now, url))

    def resource_finished(self, url: str, size: int, pushed: bool, from_cache: bool) -> None:
        self.sink.append(ResourceFinished(self.now, url, size, pushed, from_cache))

    def milestone(self, name: str) -> None:
        self.sink.append(Milestone(self.now, name))

    def paint(self, weight: float, source: str) -> None:
        self.sink.append(Paint(self.now, weight, source))

    def early_hints_sent(self, conn: str, stream_id: int, url_count: int) -> None:
        self.sink.append(EarlyHintsSent(self.now, conn, stream_id, url_count))

    def early_hints_received(self, conn: str, stream_id: int, url_count: int) -> None:
        self.sink.append(EarlyHintsReceived(self.now, conn, stream_id, url_count))

    def preload_discovered(self, url: str, rtype: str, source: str) -> None:
        self.sink.append(PreloadDiscovered(self.now, url, rtype, source))

    def quic_stream_recovered(self, conn: str, stream_id: int, recovered_bytes: int) -> None:
        self.sink.append(QuicStreamRecovered(self.now, conn, stream_id, recovered_bytes))
