"""Deterministic wire/event tracing for the replay testbed.

The paper explained its push verdicts "based on inspection of the
rendering process" (§4.3, §5); this package gives the reproduction the
same observability in the structured spirit of IETF qlog.  A
:class:`Tracer` threaded through the stack records typed events —
stream lifecycle, frames on the wire, push promise/accept/reject,
cwnd/RTO evolution, impairment drops, cache hits, paint and onload
milestones — all stamped with **simulated** time, never wall-clock, so
tracing cannot perturb any experiment output.

Everything here is zero-overhead when disabled: instrumented objects
hold a ``tracer`` attribute that defaults to ``None`` and hot paths pay
exactly one attribute check.
"""

from .core import (
    EVENT_TYPES,
    CacheHit,
    CwndSample,
    EarlyHintsReceived,
    EarlyHintsSent,
    FrameReceived,
    FrameSent,
    ListSink,
    Milestone,
    NullTracer,
    PacketDropped,
    PacketReordered,
    Paint,
    PreloadDiscovered,
    PushAdopted,
    PushData,
    PushPromised,
    PushReceived,
    PushRejected,
    QuicStreamRecovered,
    ResourceDiscovered,
    ResourceFinished,
    ResourceRequested,
    ResourceResponse,
    Retransmit,
    StreamClosed,
    StreamOpened,
    StreamReset,
    Trace,
    TraceEvent,
    Tracer,
    is_enabled,
)
from .diff import TraceDiff, diff_traces, render_diff
from .qlog import BinaryRingSink, parse_qlog_events, qlog_json, to_qlog
from .store import TraceSpec, TraceStore

__all__ = [
    "BinaryRingSink",
    "CacheHit",
    "CwndSample",
    "EVENT_TYPES",
    "EarlyHintsReceived",
    "EarlyHintsSent",
    "FrameReceived",
    "FrameSent",
    "ListSink",
    "Milestone",
    "NullTracer",
    "PacketDropped",
    "PacketReordered",
    "Paint",
    "PreloadDiscovered",
    "PushAdopted",
    "PushData",
    "PushPromised",
    "PushReceived",
    "PushRejected",
    "QuicStreamRecovered",
    "ResourceDiscovered",
    "ResourceFinished",
    "ResourceRequested",
    "ResourceResponse",
    "Retransmit",
    "StreamClosed",
    "StreamOpened",
    "StreamReset",
    "Trace",
    "TraceDiff",
    "TraceEvent",
    "TraceSpec",
    "TraceStore",
    "Tracer",
    "diff_traces",
    "is_enabled",
    "parse_qlog_events",
    "qlog_json",
    "render_diff",
    "to_qlog",
]
