"""qlog-style JSON export and a compact binary ring-buffer sink.

The JSON shape follows the spirit of IETF qlog (draft-ietf-quic-qlog):
a top-level document with ``qlog_version`` and a ``traces`` array whose
single entry holds ``common_fields``, run metadata, and the ordered
``events`` list (``{"time": ..., "name": ..., "data": {...}}``).
Serialization is canonical — sorted keys, no whitespace — so the same
run always yields byte-identical output, which is what the determinism
tests pin.

For long grids where keeping every event of every run in memory is
wasteful, :class:`BinaryRingSink` retains only the most recent N events
as struct-packed records with an interned string table; ``dump()`` /
``load()`` round-trip the buffer losslessly.
"""

from __future__ import annotations

import hashlib
import json
import struct
from collections import deque
from typing import Dict, List, Optional, Tuple

from .core import EVENT_BY_NAME, EVENT_TYPES, Trace, TraceEvent

QLOG_VERSION = "0.4"

#: struct codes per field annotation; strings are stored as u32 indexes
#: into the sink's interned string table.
_FIELD_CODES = {"float": "d", "int": "q", "bool": "?", "str": "I"}


def _field_plan(cls: type) -> Tuple[struct.Struct, List[Tuple[str, str]]]:
    from dataclasses import fields

    plan = [(f.name, _FIELD_CODES[f.type]) for f in fields(cls)]
    fmt = "<B" + "".join(code for _, code in plan)
    return struct.Struct(fmt), plan


_PLANS: Dict[type, Tuple[struct.Struct, List[Tuple[str, str]]]] = {
    cls: _field_plan(cls) for cls in EVENT_TYPES
}
_CODES: Dict[type, int] = {cls: index for index, cls in enumerate(EVENT_TYPES)}


# ----------------------------------------------------------------------
# qlog JSON export


def to_qlog(trace: Trace) -> dict:
    """Render a finished trace as a qlog-style document."""
    events = [
        {"time": event.t, "name": event.qlog_name, "data": event.data()}
        for event in trace.events
    ]
    return {
        "qlog_version": QLOG_VERSION,
        "qlog_format": "JSON",
        "title": str(trace.meta.get("site", "")),
        "traces": [
            {
                "common_fields": {"time_format": "absolute", "reference_time": 0},
                "vantage_point": {"name": "repro-sim", "type": "network"},
                "meta": trace.meta,
                "events": events,
            }
        ],
    }


def qlog_json(trace: Trace) -> str:
    """Canonical (byte-stable) JSON serialization of :func:`to_qlog`."""
    return json.dumps(to_qlog(trace), sort_keys=True, separators=(",", ":"))


def parse_qlog_events(document: dict) -> Trace:
    """Rebuild a :class:`Trace` from a qlog document (inverse of
    :func:`to_qlog` for every event type in the registry)."""
    entry = document["traces"][0]
    events: List[TraceEvent] = []
    for raw in entry["events"]:
        cls = EVENT_BY_NAME.get(raw["name"])
        if cls is None:
            continue  # forward compatibility: skip unknown event types
        events.append(cls(t=raw["time"], **raw["data"]))
    return Trace(meta=dict(entry.get("meta", {})), events=events)


def qlog_digest(trace: Trace) -> str:
    """SHA-256 of the canonical serialization (cheap identity checks)."""
    return hashlib.sha256(qlog_json(trace).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Binary ring-buffer sink

RING_MAGIC = b"RTRB1\n"


class BinaryRingSink:
    """Bounded sink: keeps the newest ``capacity`` events, struct-packed.

    Strings (connection labels, URLs, frame types) are interned into a
    table shared across records, so a long grid's sink stays compact
    even though URLs repeat thousands of times.  ``dropped`` counts
    events evicted from the ring.
    """

    def __init__(self, capacity: int = 1 << 16):
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._records: deque = deque(maxlen=capacity)
        self._strings: List[str] = []
        self._index: Dict[str, int] = {}
        self.dropped = 0

    def _intern(self, value: str) -> int:
        index = self._index.get(value)
        if index is None:
            index = len(self._strings)
            self._index[value] = index
            self._strings.append(value)
        return index

    def append(self, event: TraceEvent) -> None:
        cls = type(event)
        packer, plan = _PLANS[cls]
        values = [_CODES[cls]]
        for name, code in plan:
            value = getattr(event, name)
            values.append(self._intern(value) if code == "I" else value)
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(packer.pack(*values))

    def __len__(self) -> int:
        return len(self._records)

    def events(self) -> List[TraceEvent]:
        return [self._decode(record) for record in self._records]

    def _decode(self, record: bytes) -> TraceEvent:
        cls = EVENT_TYPES[record[0]]
        packer, plan = _PLANS[cls]
        values = packer.unpack(record)[1:]
        kwargs = {}
        for (name, code), value in zip(plan, values):
            kwargs[name] = self._strings[value] if code == "I" else value
        return cls(**kwargs)

    # -- persistence ---------------------------------------------------
    def dump(self) -> bytes:
        """Serialize the string table and ring contents."""
        parts = [RING_MAGIC, struct.pack("<IQ", len(self._strings), self.dropped)]
        for value in self._strings:
            raw = value.encode("utf-8")
            parts.append(struct.pack("<I", len(raw)))
            parts.append(raw)
        parts.append(struct.pack("<I", len(self._records)))
        for record in self._records:
            parts.append(struct.pack("<I", len(record)))
            parts.append(record)
        return b"".join(parts)

    @classmethod
    def load(cls, payload: bytes, capacity: Optional[int] = None) -> "BinaryRingSink":
        """Rebuild a sink from :meth:`dump` output (lossless)."""
        if payload[: len(RING_MAGIC)] != RING_MAGIC:
            raise ValueError("not a binary trace ring dump (bad magic)")
        offset = len(RING_MAGIC)
        n_strings, dropped = struct.unpack_from("<IQ", payload, offset)
        offset += struct.calcsize("<IQ")
        strings: List[str] = []
        for _ in range(n_strings):
            (length,) = struct.unpack_from("<I", payload, offset)
            offset += 4
            strings.append(payload[offset : offset + length].decode("utf-8"))
            offset += length
        (n_records,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        records = []
        for _ in range(n_records):
            (length,) = struct.unpack_from("<I", payload, offset)
            offset += 4
            records.append(payload[offset : offset + length])
            offset += length
        sink = cls(capacity=capacity or max(n_records, 1))
        sink._strings = strings
        sink._index = {value: index for index, value in enumerate(strings)}
        sink.dropped = dropped
        for record in records:
            sink._records.append(record)
        return sink
