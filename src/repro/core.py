"""Simulation-core selection: fastcore vs pure-Python oracle.

The replay hot loop exists in two interchangeable implementations:

* ``fast`` — the batch-steppable fastcore (:mod:`repro.sim.fastcore`):
  a calendar queue with dedicated monotonic timer lanes, no-handle
  scheduling for fire-and-forget events, and same-timestamp batch
  dispatch.  This is the default.
* ``python`` — the original heap-based :class:`repro.sim.events.Simulator`,
  retained verbatim as the **bit-identity oracle**.  Every observable
  of a replay (event order, wire bytes, PLT, determinism counters,
  engine cache fingerprints) must be identical under both cores; the
  fastcore-vs-oracle equivalence suite and the golden records enforce
  this, following the ``huffman_decode_reference`` pattern.

Selection is by the ``REPRO_CORE`` environment variable (``fast`` |
``python``), the ``--core`` CLI flag, or :func:`set_core_mode`.  When
the optional mypyc-compiled build of the fastcore is installed
(``pip install -e .[fast]``), ``fast`` transparently uses it; the pure
interpretation of the same module is used otherwise, so ``fast`` never
requires a compiler.  ``REPRO_CORE=compiled`` insists on the compiled
extension and raises if it is absent — CI uses it to make sure the
compiled job really exercised compiled code.
"""

from __future__ import annotations

import os
from typing import Optional

_VALID = ("fast", "python", "compiled")

#: Process-wide override; ``None`` defers to the environment.
_mode_override: Optional[str] = None


def _env_mode() -> str:
    mode = os.environ.get("REPRO_CORE", "fast").strip().lower()
    return mode if mode in _VALID else "fast"


def core_mode() -> str:
    """The active core: ``fast``, ``python``, or ``compiled``."""
    return _mode_override if _mode_override is not None else _env_mode()


def set_core_mode(mode: Optional[str]) -> None:
    """Override the core for this process (``None`` restores env/default)."""
    global _mode_override
    if mode is not None and mode not in _VALID:
        raise ValueError(f"invalid core mode {mode!r}; choose from {_VALID}")
    _mode_override = mode


def compiled_available() -> bool:
    """True when the mypyc-compiled fastcore extension is importable."""
    try:
        from .sim import fastcore

        return not fastcore.__file__.endswith(".py")
    except ImportError:  # pragma: no cover - fastcore always ships
        return False


def use_fastcore() -> bool:
    """True when simulators should be built on the fastcore."""
    mode = core_mode()
    if mode == "compiled" and not compiled_available():
        raise RuntimeError(
            "REPRO_CORE=compiled but the mypyc-compiled fastcore is not "
            "installed; build it with `pip install -e .[fast]` or use "
            "REPRO_CORE=fast"
        )
    return mode in ("fast", "compiled")
