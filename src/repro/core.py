"""Simulation-core selection: fastcore vs pure-Python oracle.

The replay hot loop exists in two interchangeable implementations:

* ``fast`` — the batch-steppable fastcore (:mod:`repro.sim.fastcore`):
  a calendar queue with dedicated monotonic timer lanes, no-handle
  scheduling for fire-and-forget events, and same-timestamp batch
  dispatch.  This is the default.
* ``python`` — the original heap-based :class:`repro.sim.events.Simulator`,
  retained verbatim as the **bit-identity oracle**.  Every observable
  of a replay (event order, wire bytes, PLT, determinism counters,
  engine cache fingerprints) must be identical under both cores; the
  fastcore-vs-oracle equivalence suite and the golden records enforce
  this, following the ``huffman_decode_reference`` pattern.

Selection is by the ``REPRO_CORE`` environment variable (``fast`` |
``python``), the ``--core`` CLI flag, or :func:`set_core_mode`.  When
the optional mypyc-compiled build of the fastcore is installed
(``pip install -e .[fast]``), ``fast`` transparently uses it; the pure
interpretation of the same module is used otherwise, so ``fast`` never
requires a compiler.  ``REPRO_CORE=compiled`` insists on the compiled
extension and raises if it is absent — CI uses it to make sure the
compiled job really exercised compiled code.
"""

from __future__ import annotations

import os
from typing import Optional

_VALID = ("fast", "python", "compiled")

#: Process-wide override; ``None`` defers to the environment.
_mode_override: Optional[str] = None


def _env_mode() -> str:
    mode = os.environ.get("REPRO_CORE", "fast").strip().lower()
    return mode if mode in _VALID else "fast"


def core_mode() -> str:
    """The active core: ``fast``, ``python``, or ``compiled``."""
    return _mode_override if _mode_override is not None else _env_mode()


def set_core_mode(mode: Optional[str]) -> None:
    """Override the core for this process (``None`` restores env/default)."""
    global _mode_override
    if mode is not None and mode not in _VALID:
        raise ValueError(f"invalid core mode {mode!r}; choose from {_VALID}")
    _mode_override = mode


def compiled_available() -> bool:
    """True when the mypyc-compiled fastcore extension is importable."""
    try:
        from .sim import fastcore

        return not fastcore.__file__.endswith(".py")
    except ImportError:  # pragma: no cover - fastcore always ships
        return False


def use_fastcore() -> bool:
    """True when simulators should be built on the fastcore."""
    mode = core_mode()
    if mode == "compiled" and not compiled_available():
        raise RuntimeError(
            "REPRO_CORE=compiled but the mypyc-compiled fastcore is not "
            "installed; build it with `pip install -e .[fast]` or use "
            "REPRO_CORE=fast"
        )
    return mode in ("fast", "compiled")


# ----------------------------------------------------------------------
# fork-point replay (REPRO_FORK)
# ----------------------------------------------------------------------
#: Process-wide override for fork-point replay; ``None`` defers to env.
_fork_override: Optional[bool] = None

_FORK_OFF = ("0", "off", "false", "no")


def fork_enabled() -> bool:
    """True when eligible runs may reuse shared prefixes via forking.

    Fork-point replay (see :mod:`repro.sim.snapshot` and DESIGN §14) is
    bit-identical to straight-through execution, so it is on by
    default; set ``REPRO_FORK=0`` (or :func:`set_fork_mode`) to force
    every run straight through — CI diffs the two.
    """
    if _fork_override is not None:
        return _fork_override
    return os.environ.get("REPRO_FORK", "1").strip().lower() not in _FORK_OFF


def set_fork_mode(enabled: Optional[bool]) -> None:
    """Override fork-point replay for this process (``None`` → env)."""
    global _fork_override
    _fork_override = enabled
