#!/usr/bin/env python
"""Benchmark-trajectory harness: protocol micros + end-to-end replays.

Runs two tiers of benchmarks and records the results in
``BENCH_replay.json`` at the repository root so every PR leaves a perf
trajectory behind:

* **protocol micros** — HPACK round trips, frame parsing, Huffman
  coding; fixed iteration counts, pure wall-clock.
* **end-to-end replay** — a fig-3-shaped grid (small synthetic corpus,
  no-push baseline vs push-all in computed order, serial, cache off),
  timed as a whole.  Alongside the wall time the harness collects
  **determinism counters** (simulator events processed, HTTP/2 frames
  on the wire, bytes on both links, and a PLT checksum) from every
  replay: optimizations must leave these byte-for-byte identical, so a
  counter drift flags a semantics change even when the tests pass.
* **fastcore vs oracle** — the same fig-3-shaped grid run once per
  simulation core (pure-Python oracle, fastcore, and the compiled
  fastcore when the ``[fast]`` extra is installed).  ``--check`` fails
  if the cores disagree on any determinism counter or if the hpack
  round-trip micro regresses past the recorded baseline by more than
  measurement noise.
* **tracing overhead** — the same fig-3-shaped grid with the trace
  subsystem disabled (every hook pays one attribute check) and with a
  live tracer per replay.  ``--check`` fails if the off-mode wall
  exceeds the replay section's by more than measurement noise, or if
  either pass drifts any determinism counter.
* **grid throughput** — the same fig-3-shaped grid submitted through
  the experiment engine under each executor: serial, the legacy
  per-cell ``ProcessPoolExecutor`` fan-out, and the warm worker pool,
  plus a warm rerun that measures the in-process LRU tier.  Every
  executor must produce fingerprint-identical results
  (``identical_outputs``), which ``--check`` enforces alongside the
  determinism counters.
* **population streaming** — a one-cohort population study at 1x and
  10x load counts, recording loads/sec and the tracemalloc peak at
  both scales (plus ``ru_maxrss`` for context).  The study streams
  through bounded reducers, so ``--check`` fails if the 10x peak
  exceeds ~2x the 1x peak — the constant-memory contract of the
  population layer.

Usage::

    PYTHONPATH=src python benchmarks/run_perf.py --record-baseline
    # ... optimize ...
    PYTHONPATH=src python benchmarks/run_perf.py            # fills "current"
    PYTHONPATH=src python benchmarks/run_perf.py --quick    # CI smoke (1 rep)

``--quick`` only reduces timing repetitions; the replay grid and the
micro iteration counts are identical in every mode, so the determinism
counters are mode-independent and CI can assert them against the
committed baseline exactly.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.h2.frames import DataFrame, FrameReader  # noqa: E402
from repro.h2.hpack import HpackDecoder, HpackEncoder  # noqa: E402
from repro.h2.hpack.huffman import huffman_decode, huffman_encode  # noqa: E402
from repro.experiments.engine import (  # noqa: E402
    ExperimentEngine,
    Grid,
    LegacyParallelExecutor,
    SerialExecutor,
    WarmPoolExecutor,
    fingerprint,
)
from repro.experiments.seeds import condition_seed, load_seed  # noqa: E402
from repro.html.builder import build_site  # noqa: E402
from repro.netsim.conditions import DSL_TESTBED  # noqa: E402
from repro.replay.testbed import ReplayTestbed  # noqa: E402
from repro.sites.corpus import TOP_100_PROFILE, generate_corpus  # noqa: E402
from repro.strategies.order import computed_push_order  # noqa: E402
from repro.strategies.simple import NoPushStrategy, PushAllStrategy  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_replay.json"

#: The replay grid is frozen: counters must be comparable across PRs.
GRID_SITES = 3
GRID_SEED = 2018
GRID_RUNS = 3
GRID_ORDER_RUNS = 2

HEADERS = [
    (":method", "GET"),
    (":scheme", "https"),
    (":authority", "www.example.com"),
    (":path", "/assets/app-39fa2bb1.js"),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", "en-US,en;q=0.9"),
    ("user-agent", "Mozilla/5.0 (X11; Linux x86_64) repro/1.0"),
    ("cookie", "session=0123456789abcdef; theme=dark"),
]

HUFFMAN_SAMPLE = (
    b"/assets/vendor.bundle-39fa2bb1.min.js?cache=31536000&v=2018 "
    b"text/html; charset=utf-8 gzip, deflate, br Mozilla/5.0 repro"
)


# ----------------------------------------------------------------------
# protocol micros
# ----------------------------------------------------------------------
def _time_loop(fn, iterations: int) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return time.perf_counter() - start


def run_micros() -> Dict[str, float]:
    encoder, decoder = HpackEncoder(), HpackDecoder()

    def hpack_round_trip():
        decoder.decode(encoder.encode(HEADERS))

    wire = b"".join(
        DataFrame(stream_id=1, data=b"x" * 1400).serialize() for _ in range(100)
    )

    def frame_parse():
        FrameReader().feed(wire)

    encoded = huffman_encode(HUFFMAN_SAMPLE)

    def huffman_round_trip():
        huffman_decode(huffman_encode(HUFFMAN_SAMPLE))

    assert huffman_decode(encoded) == HUFFMAN_SAMPLE
    return {
        "hpack_round_trip_2k_s": _time_loop(hpack_round_trip, 2_000),
        "frame_parse_100x500_s": _time_loop(frame_parse, 500),
        "huffman_round_trip_2k_s": _time_loop(huffman_round_trip, 2_000),
    }


# ----------------------------------------------------------------------
# end-to-end replay benchmark (fig-3-shaped, serial, cache off)
# ----------------------------------------------------------------------
class Counters:
    """Determinism counters accumulated across every replay of the grid."""

    def __init__(self):
        self.replays = 0
        self.events_processed = 0
        self.frames = 0
        self.downlink_bytes = 0
        self.uplink_bytes = 0
        self.plt_checksum = 0.0

    def probe(self, view) -> None:
        self.replays += 1
        self.events_processed += view.events_processed
        self.frames += view.server_frames

    def observe_result(self, result) -> None:
        self.downlink_bytes += result.downlink_bytes
        self.uplink_bytes += result.uplink_bytes
        # PLT values are exact simulated milliseconds; rounding keeps the
        # checksum JSON-stable without losing discriminating power.
        self.plt_checksum = round(self.plt_checksum + result.plt_ms, 4)

    def to_json(self) -> Dict[str, object]:
        return {
            "replays": self.replays,
            "events_processed": self.events_processed,
            "frames_on_wire": self.frames,
            "downlink_bytes": self.downlink_bytes,
            "uplink_bytes": self.uplink_bytes,
            "plt_checksum_ms": self.plt_checksum,
        }


def run_replay_grid(counters: Optional[Counters], tracer_factory=None) -> None:
    """One serial pass over the frozen fig-3-shaped grid.

    ``tracer_factory`` (when given) supplies one fresh tracer per
    replay; the trace benchmark uses it to measure tracing overhead and
    to assert that traced runs leave every determinism counter intact.
    """
    probe = counters.probe if counters is not None else None

    def tracer():
        return tracer_factory() if tracer_factory is not None else None

    corpus = generate_corpus(TOP_100_PROFILE, GRID_SITES, seed=GRID_SEED)
    for site_index, site in enumerate(corpus):
        built = build_site(site.spec)
        # §4.2: recover the push order from no-push loads.
        order_timelines = []
        for run_index in range(GRID_ORDER_RUNS):
            testbed = ReplayTestbed(
                built=built, conditions=DSL_TESTBED, strategy=NoPushStrategy()
            )
            result = testbed.run(
                seed=load_seed(site_index, run_index), probe=probe, tracer=tracer()
            )
            if counters is not None:
                counters.observe_result(result)
            order_timelines.append(result.timeline)
        order = computed_push_order(order_timelines, built.html_url)
        for strategy in (NoPushStrategy(), PushAllStrategy(order=order)):
            testbed = ReplayTestbed(
                built=built, conditions=DSL_TESTBED, strategy=strategy
            )
            for run_index in range(GRID_RUNS):
                # condition_seed is unused with fixed DSL conditions but
                # kept in the derivation to mirror run_repeated exactly.
                condition_seed(site_index, run_index)
                result = testbed.run(
                    seed=load_seed(site_index, run_index), probe=probe, tracer=tracer()
                )
                if counters is not None:
                    counters.observe_result(result)


def run_replay_benchmark(repetitions: int) -> Dict[str, object]:
    counters = Counters()
    start = time.perf_counter()
    run_replay_grid(counters)
    walls = [time.perf_counter() - start]
    for _ in range(repetitions - 1):
        start = time.perf_counter()
        run_replay_grid(None)
        walls.append(time.perf_counter() - start)
    return {
        "wall_s": min(walls),
        "wall_all_s": walls,
        "counters": counters.to_json(),
    }


# ----------------------------------------------------------------------
# fastcore vs oracle (same frozen grid, explicit core selection)
# ----------------------------------------------------------------------
#: The hpack round-trip micro may not regress past the recorded
#: baseline by more than timing noise under ``--check``.
HPACK_NOISE_FACTOR = 1.15


def run_fastcore_benchmark(repetitions: int) -> Dict[str, object]:
    """Time the frozen grid under each simulation core.

    The pure-Python oracle and the fastcore must produce bit-identical
    determinism counters — that equivalence is the contract that lets
    the fastcore replace the oracle at all.  The compiled fastcore is
    timed too when the mypyc extension is installed (``[fast]`` extra);
    its absence is recorded, never an error.
    """
    from repro.core import compiled_available, set_core_mode

    def timed(mode: str) -> tuple:
        set_core_mode(mode)
        try:
            counters = Counters()
            start = time.perf_counter()
            run_replay_grid(counters)
            walls = [time.perf_counter() - start]
            for _ in range(repetitions - 1):
                start = time.perf_counter()
                run_replay_grid(None)
                walls.append(time.perf_counter() - start)
            return min(walls), counters.to_json()
        finally:
            set_core_mode(None)

    python_wall, python_counters = timed("python")
    fast_wall, fast_counters = timed("fast")
    walls = {"python": python_wall, "fast": fast_wall}
    counters = {"python": python_counters, "fast": fast_counters}
    identical = python_counters == fast_counters
    if compiled_available():
        compiled_wall, compiled_counters = timed("compiled")
        walls["compiled"] = compiled_wall
        counters["compiled"] = compiled_counters
        identical = identical and compiled_counters == python_counters
    return {
        "wall_s": walls,
        "counters": counters,
        "identical_counters": identical,
        "speedup_fast_vs_python": round(python_wall / fast_wall, 3),
        "compiled_available": compiled_available(),
    }


# ----------------------------------------------------------------------
# tracing overhead (off-mode cost + on-mode determinism, fig-3-shaped)
# ----------------------------------------------------------------------
#: Off-mode tracing runs the byte-identical workload of the replay
#: section, so its wall may differ from ``replay.wall_s`` only by
#: measurement noise; ``--check`` enforces this generous bound.
TRACE_OFF_NOISE_FACTOR = 1.5


def run_trace_benchmark(repetitions: int) -> Dict[str, object]:
    """Measure tracing: off-mode overhead and on-mode determinism.

    * ``wall_off_s`` — the frozen grid with tracing compiled in but
      disabled (every hook pays one attribute check); compared against
      the replay section's wall under ``--check``.
    * ``wall_on_s`` + ``events_traced`` — the same grid with a live
      tracer per replay.
    * ``counters_off`` / ``counters_on`` — determinism counters from
      both passes; tracing must leave them byte-for-byte identical.
    """
    from repro.trace import Tracer

    counters_off = Counters()
    start = time.perf_counter()
    run_replay_grid(counters_off)
    walls_off = [time.perf_counter() - start]
    for _ in range(repetitions - 1):
        start = time.perf_counter()
        run_replay_grid(None)
        walls_off.append(time.perf_counter() - start)

    tracers: List[Tracer] = []

    def factory() -> Tracer:
        tracer = Tracer()
        tracers.append(tracer)
        return tracer

    counters_on = Counters()
    start = time.perf_counter()
    run_replay_grid(counters_on, tracer_factory=factory)
    wall_on = time.perf_counter() - start
    events_traced = sum(len(tracer.events()) for tracer in tracers)
    return {
        "wall_off_s": min(walls_off),
        "wall_on_s": wall_on,
        "events_traced": events_traced,
        "counters_off": counters_off.to_json(),
        "counters_on": counters_on.to_json(),
    }


# ----------------------------------------------------------------------
# grid throughput (engine + executors, fig-3-shaped)
# ----------------------------------------------------------------------
GRID_BENCH_WORKERS = 8


def _engine_grid(engine: ExperimentEngine) -> Grid:
    """The frozen fig-3-shaped grid, declared through the engine so the
    §4.2 push orders are computed by the executor under test too."""
    corpus = generate_corpus(TOP_100_PROFILE, GRID_SITES, seed=GRID_SEED)
    orders = engine.orders_for(
        [site.spec for site in corpus], runs=GRID_ORDER_RUNS
    )
    grid = Grid(name="bench-grid")
    for index, (site, order) in enumerate(zip(corpus, orders)):
        grid.add(site.spec, NoPushStrategy(), runs=GRID_RUNS, seed_base=index)
        grid.add(
            site.spec, PushAllStrategy(order=order), runs=GRID_RUNS, seed_base=index
        )
    return grid


def run_grid_benchmark(repetitions: int) -> Dict[str, object]:
    """Time the same grid through each executor; outputs must agree."""

    def timed(executor) -> tuple:
        """Best-of-``repetitions`` over one (possibly persistent) executor."""
        walls, prints = [], None
        try:
            for _ in range(repetitions):
                engine = ExperimentEngine(executor=executor, cache=None, force=True)
                start = time.perf_counter()
                results = engine.run(_engine_grid(engine))
                walls.append(time.perf_counter() - start)
                prints = [fingerprint(result) for result in results]
        finally:
            executor.close()
        return min(walls), prints

    serial_wall, serial_prints = timed(SerialExecutor())
    legacy_wall, legacy_prints = timed(LegacyParallelExecutor(GRID_BENCH_WORKERS))
    # The pool persists across repetitions — exactly how experiment
    # drivers hold it across grids — so reps after the first measure the
    # warm steady state.
    warm_wall, warm_prints = timed(
        WarmPoolExecutor(GRID_BENCH_WORKERS, auto_scale=False)
    )
    # The production default: auto_scale clamps to the host's cores, so
    # on small machines this takes the in-process warm path instead of
    # oversubscribing.
    warm_auto = WarmPoolExecutor(GRID_BENCH_WORKERS)
    effective_workers = warm_auto.effective_workers
    warm_auto_wall, warm_auto_prints = timed(warm_auto)
    # LRU tier: the same grid resubmitted to a warm engine is answered
    # entirely from the in-process memory cache.
    with WarmPoolExecutor(GRID_BENCH_WORKERS, auto_scale=False) as executor:
        engine = ExperimentEngine(executor=executor, cache=None)
        grid = _engine_grid(engine)
        engine.run(grid)
        start = time.perf_counter()
        rerun = engine.run(grid)
        lru_wall = time.perf_counter() - start
        lru_prints = [fingerprint(result) for result in rerun]
    identical = (
        serial_prints
        == legacy_prints
        == warm_prints
        == warm_auto_prints
        == lru_prints
    )
    best_warm = min(warm_wall, warm_auto_wall)
    return {
        "cpus": os.cpu_count() or 1,
        "workers": {
            "requested": GRID_BENCH_WORKERS,
            "forced": GRID_BENCH_WORKERS,
            "auto_scaled": effective_workers,
        },
        "wall_s": {
            "serial": serial_wall,
            "legacy_parallel": legacy_wall,
            "warm_pool": warm_wall,
            "warm_auto": warm_auto_wall,
            "warm_lru_rerun": lru_wall,
        },
        "speedup_warm_vs_legacy": round(legacy_wall / best_warm, 3),
        "speedup_warm_vs_serial": round(serial_wall / best_warm, 3),
        "speedup_lru_vs_legacy": round(legacy_wall / lru_wall, 3),
        "identical_outputs": identical,
    }


# ----------------------------------------------------------------------
# population streaming (constant-memory contract)
# ----------------------------------------------------------------------
POPULATION_BASE_LOADS = 12
POPULATION_SCALE = 10
#: The 10x study may peak at most this multiple of the 1x study's
#: traced peak; with materialized run lists the ratio would be ~10x.
POPULATION_MEMORY_FACTOR = 2.0


def run_population_benchmark() -> Dict[str, object]:
    """Stream a one-cohort study at 1x and 10x loads; peak must not scale.

    Memory is observed with :mod:`tracemalloc` (``reset_peak`` between
    scales), which sees exactly the Python allocations the streaming
    refactor bounds; ``ru_maxrss`` is recorded for context but is
    monotone over the process lifetime, so it cannot express the
    per-scale comparison.  A throwaway warm-up study runs first and
    each measured study starts from a collected heap — otherwise
    import-time caches and GC timing land in the small base peak and
    jitter the ratio by tens of percent.
    """
    import gc
    import resource
    import tracemalloc

    from repro.population import PopulationConfig, run_population
    from repro.population.cohorts import QUICK_PROFILE, Cohort
    from repro.population.profiles import population_sampler

    cohort = Cohort(
        name="bench/wired",
        spec=generate_corpus(QUICK_PROFILE, 1, seed=GRID_SEED)[0].spec,
        sampler=population_sampler("wired"),
        description="perf-harness cohort",
    )

    def study(loads: int) -> Dict[str, object]:
        config = PopulationConfig(
            loads=loads, batch_size=16, seed=GRID_SEED, cohorts=[cohort]
        )
        engine = ExperimentEngine(executor=SerialExecutor(), cache=None)
        gc.collect()
        tracemalloc.start()
        tracemalloc.reset_peak()
        start = time.perf_counter()
        result = run_population(config, engine=engine)
        wall = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        replays = loads * 2  # paired arms
        return {
            "loads": loads,
            "replays": replays,
            "wall_s": wall,
            "loads_per_s": round(replays / wall, 3),
            "tracemalloc_peak_bytes": peak,
            "verdicts": [acc.verdict for acc in result.cohorts],
        }

    study(POPULATION_BASE_LOADS)  # warm-up: imports, freelists, memo caches
    base = study(POPULATION_BASE_LOADS)
    scaled = study(POPULATION_BASE_LOADS * POPULATION_SCALE)
    ratio = (
        scaled["tracemalloc_peak_bytes"] / base["tracemalloc_peak_bytes"]
        if base["tracemalloc_peak_bytes"]
        else 0.0
    )
    return {
        "base": base,
        "scaled": scaled,
        "scale": POPULATION_SCALE,
        "memory_ratio": round(ratio, 3),
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


# ----------------------------------------------------------------------
# result recording
# ----------------------------------------------------------------------
def build_section(repetitions: int) -> Dict[str, object]:
    # Micros are best-of-repetitions like every timed section: single
    # samples on a shared host are too noisy for the --check bound.
    micros = run_micros()
    for _ in range(repetitions - 1):
        for name, value in run_micros().items():
            if value < micros[name]:
                micros[name] = value
    replay = run_replay_benchmark(repetitions)
    fastcore = run_fastcore_benchmark(repetitions)
    trace = run_trace_benchmark(repetitions)
    grid = run_grid_benchmark(repetitions)
    population = run_population_benchmark()
    return {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "micros": micros,
        "replay": replay,
        "fastcore": fastcore,
        "trace": trace,
        "grid": grid,
        "population": population,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="record this run as the pre-optimization baseline",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="single timing repetition (CI smoke); counters are unaffected",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless determinism counters match the baseline"
        " (count-based only; wall times never fail the check)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="result JSON path"
    )
    args = parser.parse_args(argv)

    repetitions = 1 if args.quick else 3
    section = build_section(repetitions)

    document: Dict[str, object] = {"schema": 1}
    if args.output.exists():
        document = json.loads(args.output.read_text())
    if args.record_baseline:
        document["baseline"] = section
        document.pop("current", None)
        document.pop("speedup", None)
    else:
        document["current"] = section

    baseline = document.get("baseline")
    current = document.get("current")
    counters_match: Optional[bool] = None
    if baseline and current:
        speedup = {
            "replay": round(
                baseline["replay"]["wall_s"] / current["replay"]["wall_s"], 3
            ),
            "micros": {
                name: round(baseline["micros"][name] / current["micros"][name], 3)
                for name in current["micros"]
                if name in baseline["micros"]
            },
        }
        counters_match = (
            baseline["replay"]["counters"] == current["replay"]["counters"]
        )
        speedup["counters_match"] = counters_match
        # The grid section compares executors within one run (the legacy
        # executor *is* the pre-PR baseline), so it needs no baseline
        # section to report a speedup.
        if "grid" in current:
            speedup["grid_warm_vs_legacy"] = current["grid"][
                "speedup_warm_vs_legacy"
            ]
        # The fastcore section compares cores within one run (the
        # oracle *is* the pre-PR engine), mirroring the grid section.
        if "fastcore" in current:
            speedup["fastcore_vs_oracle"] = current["fastcore"][
                "speedup_fast_vs_python"
            ]
        document["speedup"] = speedup
        print(f"replay speedup vs baseline: {speedup['replay']}x")
        print(f"determinism counters match baseline: {counters_match}")
        if not counters_match:
            print("WARNING: determinism counters drifted", file=sys.stderr)

    args.output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    label = "baseline" if args.record_baseline else "current"
    print(f"{label} replay wall: {section['replay']['wall_s']:.3f} s")
    for name, value in section["micros"].items():
        print(f"{label} {name}: {value:.3f} s")
    grid = section["grid"]
    for name, value in grid["wall_s"].items():
        print(f"{label} grid {name}: {value:.3f} s")
    print(
        f"{label} grid warm vs legacy: {grid['speedup_warm_vs_legacy']}x "
        f"(cpus={grid['cpus']}, identical_outputs={grid['identical_outputs']})"
    )
    fastcore = section["fastcore"]
    for name, value in fastcore["wall_s"].items():
        print(f"{label} fastcore {name}: {value:.3f} s")
    print(
        f"{label} fastcore vs oracle: {fastcore['speedup_fast_vs_python']}x "
        f"(identical_counters={fastcore['identical_counters']}, "
        f"compiled_available={fastcore['compiled_available']})"
    )
    trace = section["trace"]
    print(
        f"{label} trace off/on wall: {trace['wall_off_s']:.3f} / "
        f"{trace['wall_on_s']:.3f} s ({trace['events_traced']} events traced)"
    )
    population = section["population"]
    print(
        f"{label} population: {population['scaled']['loads_per_s']} loads/s, "
        f"peak 1x/{population['scale']}x = "
        f"{population['base']['tracemalloc_peak_bytes']:,} / "
        f"{population['scaled']['tracemalloc_peak_bytes']:,} bytes "
        f"(ratio {population['memory_ratio']})"
    )
    print(json.dumps(section["replay"]["counters"], indent=2, sort_keys=True))
    failures = []
    if args.check:
        if counters_match is not True:
            failures.append("determinism counters drifted from baseline")
        if not grid["identical_outputs"]:
            failures.append("executors disagreed on grid outputs")
        replay_counters = section["replay"]["counters"]
        if trace["counters_off"] != replay_counters:
            failures.append("tracing-off pass drifted the determinism counters")
        if trace["counters_on"] != replay_counters:
            failures.append("tracing-on pass drifted the determinism counters")
        if trace["events_traced"] <= 0:
            failures.append("tracing-on pass captured no events")
        bound = TRACE_OFF_NOISE_FACTOR * section["replay"]["wall_s"]
        if trace["wall_off_s"] > bound:
            failures.append(
                f"tracing-off wall {trace['wall_off_s']:.3f}s exceeds the "
                f"noise bound {bound:.3f}s — disabled hooks are too expensive"
            )
        if not fastcore["identical_counters"]:
            failures.append(
                "fastcore and oracle disagreed on the determinism counters"
            )
        if fastcore["counters"]["python"] != replay_counters:
            failures.append(
                "explicit-oracle pass drifted from the replay section counters"
            )
        if baseline:
            base_hpack = baseline["micros"].get("hpack_round_trip_2k_s")
            cur_hpack = section["micros"]["hpack_round_trip_2k_s"]
            if base_hpack and cur_hpack > base_hpack * HPACK_NOISE_FACTOR:
                failures.append(
                    f"hpack round trip {cur_hpack:.4f}s regressed past the "
                    f"baseline {base_hpack:.4f}s (noise factor "
                    f"{HPACK_NOISE_FACTOR}x)"
                )
        if population["memory_ratio"] > POPULATION_MEMORY_FACTOR:
            failures.append(
                f"population memory peak grew {population['memory_ratio']}x "
                f"over a {population['scale']}x load scale (bound "
                f"{POPULATION_MEMORY_FACTOR}x) — the streaming pipeline is "
                "accumulating per-load state"
            )
    for failure in failures:
        print(f"check FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
