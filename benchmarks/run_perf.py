#!/usr/bin/env python
"""Benchmark-trajectory harness: protocol micros + end-to-end replays.

Runs two tiers of benchmarks and records the results in
``BENCH_replay.json`` at the repository root so every PR leaves a perf
trajectory behind:

* **protocol micros** — HPACK round trips, frame parsing, Huffman
  coding; fixed iteration counts, pure wall-clock.
* **end-to-end replay** — a fig-3-shaped grid (small synthetic corpus,
  no-push baseline vs push-all in computed order, serial, cache off),
  timed as a whole.  Alongside the wall time the harness collects
  **determinism counters** (simulator events processed, HTTP/2 frames
  on the wire, bytes on both links, and a PLT checksum) from every
  replay: optimizations must leave these byte-for-byte identical, so a
  counter drift flags a semantics change even when the tests pass.
* **fastcore vs oracle** — the same fig-3-shaped grid run once per
  simulation core (pure-Python oracle, fastcore, and the compiled
  fastcore when the ``[fast]`` extra is installed).  Each timing
  sample runs in a *fresh subprocess* (the hidden ``--fastcore-probe``
  entry point), with the cores interleaved round-robin so allocator
  and freelist warm-up lands on every core equally — two cores timed
  back-to-back in one warmed process share so much interpreter state
  that the recorded ratio collapses toward 1.0x.  ``--check`` fails
  if the cores disagree on any determinism counter or if the hpack
  round-trip micro regresses past the recorded baseline by more than
  measurement noise.
* **fork-point replay** — the snapshot/fork subsystem, measured two
  ways.  The *sim fan-out* benchmark runs a long strategy-invariant
  event schedule once and forks K divergent continuations from the
  snapshot, against K straight re-runs of the whole schedule — the
  K-way prefix-reuse shape of candidate search.  The *paired grid*
  benchmark runs a CRN-paired candidate grid through ``run_single``
  with forking off and on; on page-load grids HTTP/2 commits the
  strategy within a few events of the response, so the honest
  end-to-end delta is small — the benchmark's job is to pin the
  bit-identity contract (``identical_outputs``) and the prefix-cache
  hit accounting, both enforced by ``--check``.
* **tracing overhead** — the same fig-3-shaped grid with the trace
  subsystem disabled (every hook pays one attribute check) and with a
  live tracer per replay.  ``--check`` fails if the off-mode wall
  exceeds the replay section's by more than measurement noise, or if
  either pass drifts any determinism counter.
* **grid throughput** — the same fig-3-shaped grid submitted through
  the experiment engine under each executor: serial, the legacy
  per-cell ``ProcessPoolExecutor`` fan-out, and the warm worker pool,
  plus a warm rerun that measures the in-process LRU tier.  Every
  executor must produce fingerprint-identical results
  (``identical_outputs``), which ``--check`` enforces alongside the
  determinism counters.
* **closed-loop optimizer** — one pinned push-policy search cell
  (one Table-1 site, clean + lossy DSL, successive halving against the
  CRN-paired baseline).  Records the arm-runs scheduled vs exhaustive
  (evaluations saved by pruning), the prefix-cache hit rate across
  sibling candidates, and the content-addressed ``table_sha``.
  ``--check`` fails if pruning saves nothing, if the hit rate falls
  below the floor, if the halving winner is not the full-budget
  exhaustive argmin, or if the table sha drifts from the recorded
  baseline.
* **population streaming** — a one-cohort population study at 1x and
  10x load counts, recording loads/sec and the tracemalloc peak at
  both scales (plus ``ru_maxrss`` for context).  The study streams
  through bounded reducers, so ``--check`` fails if the 10x peak
  exceeds ~2x the 1x peak — the constant-memory contract of the
  population layer.

Usage::

    PYTHONPATH=src python benchmarks/run_perf.py --record-baseline
    # ... optimize ...
    PYTHONPATH=src python benchmarks/run_perf.py            # fills "current"
    PYTHONPATH=src python benchmarks/run_perf.py --quick    # CI smoke (1 rep)

``--quick`` only reduces timing repetitions; the replay grid and the
micro iteration counts are identical in every mode, so the determinism
counters are mode-independent and CI can assert them against the
committed baseline exactly.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.h2.frames import DataFrame, FrameReader  # noqa: E402
from repro.h2.hpack import HpackDecoder, HpackEncoder  # noqa: E402
from repro.h2.hpack.huffman import huffman_decode, huffman_encode  # noqa: E402
from repro.experiments.engine import (  # noqa: E402
    ExperimentEngine,
    Grid,
    LegacyParallelExecutor,
    SerialExecutor,
    WarmPoolExecutor,
    fingerprint,
)
from repro.experiments.seeds import condition_seed, load_seed  # noqa: E402
from repro.html.builder import build_site  # noqa: E402
from repro.netsim.conditions import DSL_TESTBED  # noqa: E402
from repro.replay.testbed import ReplayTestbed  # noqa: E402
from repro.sites.corpus import TOP_100_PROFILE, generate_corpus  # noqa: E402
from repro.strategies.order import computed_push_order  # noqa: E402
from repro.strategies.simple import NoPushStrategy, PushAllStrategy  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_replay.json"

#: The replay grid is frozen: counters must be comparable across PRs.
GRID_SITES = 3
GRID_SEED = 2018
GRID_RUNS = 3
GRID_ORDER_RUNS = 2

HEADERS = [
    (":method", "GET"),
    (":scheme", "https"),
    (":authority", "www.example.com"),
    (":path", "/assets/app-39fa2bb1.js"),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", "en-US,en;q=0.9"),
    ("user-agent", "Mozilla/5.0 (X11; Linux x86_64) repro/1.0"),
    ("cookie", "session=0123456789abcdef; theme=dark"),
]

HUFFMAN_SAMPLE = (
    b"/assets/vendor.bundle-39fa2bb1.min.js?cache=31536000&v=2018 "
    b"text/html; charset=utf-8 gzip, deflate, br Mozilla/5.0 repro"
)


# ----------------------------------------------------------------------
# protocol micros
# ----------------------------------------------------------------------
def _time_loop(fn, iterations: int) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return time.perf_counter() - start


def run_micros() -> Dict[str, float]:
    encoder, decoder = HpackEncoder(), HpackDecoder()

    def hpack_round_trip():
        decoder.decode(encoder.encode(HEADERS))

    wire = b"".join(
        DataFrame(stream_id=1, data=b"x" * 1400).serialize() for _ in range(100)
    )

    def frame_parse():
        FrameReader().feed(wire)

    encoded = huffman_encode(HUFFMAN_SAMPLE)

    def huffman_round_trip():
        huffman_decode(huffman_encode(HUFFMAN_SAMPLE))

    assert huffman_decode(encoded) == HUFFMAN_SAMPLE
    return {
        "hpack_round_trip_2k_s": _time_loop(hpack_round_trip, 2_000),
        "frame_parse_100x500_s": _time_loop(frame_parse, 500),
        "huffman_round_trip_2k_s": _time_loop(huffman_round_trip, 2_000),
    }


# ----------------------------------------------------------------------
# end-to-end replay benchmark (fig-3-shaped, serial, cache off)
# ----------------------------------------------------------------------
class Counters:
    """Determinism counters accumulated across every replay of the grid."""

    def __init__(self):
        self.replays = 0
        self.events_processed = 0
        self.frames = 0
        self.downlink_bytes = 0
        self.uplink_bytes = 0
        self.plt_checksum = 0.0

    def probe(self, view) -> None:
        self.replays += 1
        self.events_processed += view.events_processed
        self.frames += view.server_frames

    def observe_result(self, result) -> None:
        self.downlink_bytes += result.downlink_bytes
        self.uplink_bytes += result.uplink_bytes
        # PLT values are exact simulated milliseconds; rounding keeps the
        # checksum JSON-stable without losing discriminating power.
        self.plt_checksum = round(self.plt_checksum + result.plt_ms, 4)

    def to_json(self) -> Dict[str, object]:
        return {
            "replays": self.replays,
            "events_processed": self.events_processed,
            "frames_on_wire": self.frames,
            "downlink_bytes": self.downlink_bytes,
            "uplink_bytes": self.uplink_bytes,
            "plt_checksum_ms": self.plt_checksum,
        }


def run_replay_grid(counters: Optional[Counters], tracer_factory=None) -> None:
    """One serial pass over the frozen fig-3-shaped grid.

    ``tracer_factory`` (when given) supplies one fresh tracer per
    replay; the trace benchmark uses it to measure tracing overhead and
    to assert that traced runs leave every determinism counter intact.
    """
    probe = counters.probe if counters is not None else None

    def tracer():
        return tracer_factory() if tracer_factory is not None else None

    corpus = generate_corpus(TOP_100_PROFILE, GRID_SITES, seed=GRID_SEED)
    for site_index, site in enumerate(corpus):
        built = build_site(site.spec)
        # §4.2: recover the push order from no-push loads.
        order_timelines = []
        for run_index in range(GRID_ORDER_RUNS):
            testbed = ReplayTestbed(
                built=built, conditions=DSL_TESTBED, strategy=NoPushStrategy()
            )
            result = testbed.run(
                seed=load_seed(site_index, run_index), probe=probe, tracer=tracer()
            )
            if counters is not None:
                counters.observe_result(result)
            order_timelines.append(result.timeline)
        order = computed_push_order(order_timelines, built.html_url)
        for strategy in (NoPushStrategy(), PushAllStrategy(order=order)):
            testbed = ReplayTestbed(
                built=built, conditions=DSL_TESTBED, strategy=strategy
            )
            for run_index in range(GRID_RUNS):
                # condition_seed is unused with fixed DSL conditions but
                # kept in the derivation to mirror run_repeated exactly.
                condition_seed(site_index, run_index)
                result = testbed.run(
                    seed=load_seed(site_index, run_index), probe=probe, tracer=tracer()
                )
                if counters is not None:
                    counters.observe_result(result)


def run_replay_benchmark(repetitions: int) -> Dict[str, object]:
    counters = Counters()
    start = time.perf_counter()
    run_replay_grid(counters)
    walls = [time.perf_counter() - start]
    for _ in range(repetitions - 1):
        start = time.perf_counter()
        run_replay_grid(None)
        walls.append(time.perf_counter() - start)
    return {
        "wall_s": min(walls),
        "wall_all_s": walls,
        "counters": counters.to_json(),
    }


# ----------------------------------------------------------------------
# fastcore vs oracle (same frozen grid, explicit core selection)
# ----------------------------------------------------------------------
#: The hpack round-trip micro may not regress past the recorded
#: baseline by more than timing noise under ``--check``.
HPACK_NOISE_FACTOR = 1.15


def _fastcore_probe(mode: str) -> int:
    """Hidden subprocess entry point: one timed grid pass on one core.

    Runs in a process of its own so every sample starts from the same
    cold interpreter — no shared freelists, no warmed allocator, no
    import-order luck.  Prints a single JSON line for the parent.
    """
    from repro.core import set_core_mode

    set_core_mode(mode)
    counters = Counters()
    start = time.perf_counter()
    run_replay_grid(counters)
    wall = time.perf_counter() - start
    print(json.dumps({"wall_s": wall, "counters": counters.to_json()}))
    return 0


def run_fastcore_benchmark(repetitions: int) -> Dict[str, object]:
    """Time the frozen grid under each simulation core, A/B style.

    The pure-Python oracle and the fastcore must produce bit-identical
    determinism counters — that equivalence is the contract that lets
    the fastcore replace the oracle at all.  The compiled fastcore is
    timed too when the mypyc extension is installed (``[fast]`` extra);
    its absence is recorded, never an error.

    Methodology (PR 7): every sample is a fresh ``--fastcore-probe``
    subprocess, and the cores are interleaved round-robin — core A,
    core B, core A, ... — so drift (thermal, page cache, host load)
    hits all cores alike.  The previous back-to-back in-process timing
    reported ~1.003x because the second core inherited the first
    core's warmed interpreter state.
    """
    import subprocess

    from repro.core import compiled_available

    modes = ["python", "fast"]
    if compiled_available():
        modes.append("compiled")
    rounds = max(2, repetitions)
    walls: Dict[str, List[float]] = {mode: [] for mode in modes}
    counters: Dict[str, object] = {}
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    for _ in range(rounds):
        for mode in modes:
            probe = subprocess.run(
                [sys.executable, __file__, "--fastcore-probe", mode],
                check=True,
                capture_output=True,
                text=True,
                env=env,
            )
            payload = json.loads(probe.stdout.strip().splitlines()[-1])
            walls[mode].append(payload["wall_s"])
            # Counters are repetition-invariant; keep the last sample.
            counters[mode] = payload["counters"]
    best = {mode: min(walls[mode]) for mode in modes}
    identical = all(counters[mode] == counters["python"] for mode in modes)
    return {
        "wall_s": best,
        "wall_all_s": walls,
        "rounds": rounds,
        "methodology": "interleaved fresh-process A/B (one subprocess per sample)",
        "counters": counters,
        "identical_counters": identical,
        "speedup_fast_vs_python": round(best["python"] / best["fast"], 3),
        "compiled_available": compiled_available(),
    }


# ----------------------------------------------------------------------
# fork-point replay (snapshot/fork prefix reuse, CRN paired)
# ----------------------------------------------------------------------
#: Sim fan-out geometry: a strategy-invariant warmup of this many
#: events is either re-simulated per candidate (straight) or executed
#: once and forked (snapshot).  Frozen so walls stay comparable.
FORK_WARMUP_EVENTS = 40_000
FORK_SUFFIX_EVENTS = 1_500
FORK_CANDIDATES = 8
#: Paired-grid geometry: candidates share each run's seeds (CRN), so
#: every run_index leases one cached prefix and forks K ways.
FORK_GRID_RUNS = 3


def _fork_fanout_world(sim):
    """A deterministic self-driving schedule with cancellation churn.

    Closure state (the ``state`` dict) and pending handles both live in
    the snapshot, so the fork path exercises exactly what the replay
    testbed relies on: callbacks, cancelled events, and closures all
    resume bit-identically.
    """
    state = {"ticks": 0, "acc": 0.0, "pending": []}

    def noop():
        state["acc"] = round(state["acc"] + 1e-6, 9)

    def tick():
        state["ticks"] += 1
        state["acc"] = round(state["acc"] + (sim.now % 7.3) * 1e-3, 9)
        sim.schedule(0.5 + (state["ticks"] % 7) * 0.25, tick)
        state["pending"].append(sim.schedule(2.0, noop))
        if len(state["pending"]) > 4:
            state["pending"].pop(0).cancel()

    sim.schedule(0.0, tick)
    return state


def _fork_divergence(sim, state, candidate: int) -> None:
    """Inject candidate-specific work at the fork boundary."""

    def bump():
        state["acc"] = round(state["acc"] + 1e-3 * (candidate + 1), 9)

    sim.schedule(0.13 * (candidate + 1), bump)


def _fork_outcome(sim, state) -> tuple:
    return (sim.now, sim.events_processed, state["ticks"], state["acc"])


def run_fork_benchmark(repetitions: int) -> Dict[str, object]:
    """Fork-point replay: K-way prefix fan-out and the CRN paired grid.

    * ``sim_fanout`` — the shape the snapshot layer is built for: a
      long strategy-invariant schedule executed once and forked into K
      divergent continuations, versus K straight re-runs of warmup +
      continuation.  Outcomes must match tuple-for-tuple.
    * ``paired_grid`` — a CRN candidate grid (baseline + K push-list
      variants, run-major) through ``run_single`` with forking off and
      on.  Page loads diverge a handful of events into the response
      (HTTP/2 commits the strategy in the first response flight), so
      the end-to-end delta is structurally small; what this benchmark
      pins is the bit-identity of forked results and the prefix-cache
      hit accounting, both of which ``--check`` enforces.
    """
    from repro.core import set_fork_mode
    from repro.experiments.runner import (
        prefix_cache_clear,
        prefix_cache_stats,
        run_single,
    )
    from repro.population.cohorts import QUICK_PROFILE
    from repro.replay.recorder import record_site
    from repro.sim import new_simulator
    from repro.strategies.simple import PushFirstNStrategy

    # --- sim-level K-way fan-out ------------------------------------
    def fanout_straight() -> List[tuple]:
        outcomes = []
        for candidate in range(FORK_CANDIDATES):
            sim = new_simulator()
            state = _fork_fanout_world(sim)
            sim.run(stop_after_events=FORK_WARMUP_EVENTS)
            _fork_divergence(sim, state, candidate)
            sim.run(stop_after_events=FORK_WARMUP_EVENTS + FORK_SUFFIX_EVENTS)
            outcomes.append(_fork_outcome(sim, state))
        return outcomes

    def fanout_forked() -> List[tuple]:
        sim = new_simulator()
        state = _fork_fanout_world(sim)
        sim.run(stop_after_events=FORK_WARMUP_EVENTS)
        snapshot = sim.snapshot(roots={"state": state}, freeze=True)
        outcomes = []
        for candidate in range(FORK_CANDIDATES):
            forked, roots = snapshot.fork()
            _fork_divergence(forked, roots["state"], candidate)
            forked.run(
                stop_after_events=FORK_WARMUP_EVENTS + FORK_SUFFIX_EVENTS
            )
            outcomes.append(_fork_outcome(forked, roots["state"]))
        return outcomes

    def best_of(fn) -> tuple:
        walls, outcomes = [], None
        for _ in range(repetitions):
            start = time.perf_counter()
            outcomes = fn()
            walls.append(time.perf_counter() - start)
        return min(walls), outcomes

    straight_wall, straight_outcomes = best_of(fanout_straight)
    forked_wall, forked_outcomes = best_of(fanout_forked)
    fanout = {
        "warmup_events": FORK_WARMUP_EVENTS,
        "suffix_events": FORK_SUFFIX_EVENTS,
        "candidates": FORK_CANDIDATES,
        "wall_s": {"straight": straight_wall, "forked": forked_wall},
        "speedup_forked_vs_straight": round(straight_wall / forked_wall, 3),
        "identical_outputs": straight_outcomes == forked_outcomes,
    }

    # --- CRN paired candidate grid ----------------------------------
    site = generate_corpus(QUICK_PROFILE, 1, seed=GRID_SEED)[0]
    built = build_site(site.spec)
    db = record_site(built)
    candidates = [None] + [
        PushFirstNStrategy(n) for n in range(1, FORK_CANDIDATES)
    ]

    def sweep() -> List[str]:
        prints = []
        # Run-major: all candidates of one run_index back-to-back, the
        # order in which the prefix cache can serve every candidate of
        # a (seed, conditions) pair from one lease.
        for run_index in range(FORK_GRID_RUNS):
            for strategy in candidates:
                result = run_single(
                    site.spec, strategy, run_index, built=built, db=db
                )
                prints.append(fingerprint(result))
        return prints

    def timed_sweep(forking: bool) -> tuple:
        set_fork_mode(forking)
        try:
            walls, prints, stats = [], None, None
            for _ in range(repetitions):
                prefix_cache_clear()
                start = time.perf_counter()
                prints = sweep()
                walls.append(time.perf_counter() - start)
                stats = prefix_cache_stats()
            return min(walls), prints, stats
        finally:
            set_fork_mode(None)
            prefix_cache_clear()

    grid_straight_wall, grid_straight_prints, _ = timed_sweep(False)
    grid_forked_wall, grid_forked_prints, stats = timed_sweep(True)
    paired_grid = {
        "candidates": len(candidates),
        "runs": FORK_GRID_RUNS,
        "wall_s": {"straight": grid_straight_wall, "forked": grid_forked_wall},
        "speedup_forked_vs_straight": round(
            grid_straight_wall / grid_forked_wall, 3
        ),
        "identical_outputs": grid_straight_prints == grid_forked_prints,
        "prefix_cache": stats,
    }
    return {
        "sim_fanout": fanout,
        "paired_grid": paired_grid,
        "speedup_fork_vs_straight": fanout["speedup_forked_vs_straight"],
        "identical_outputs": (
            fanout["identical_outputs"] and paired_grid["identical_outputs"]
        ),
    }


# ----------------------------------------------------------------------
# tracing overhead (off-mode cost + on-mode determinism, fig-3-shaped)
# ----------------------------------------------------------------------
#: Off-mode tracing runs the byte-identical workload of the replay
#: section, so its wall may differ from ``replay.wall_s`` only by
#: measurement noise; ``--check`` enforces this generous bound.
TRACE_OFF_NOISE_FACTOR = 1.5


def run_trace_benchmark(repetitions: int) -> Dict[str, object]:
    """Measure tracing: off-mode overhead and on-mode determinism.

    * ``wall_off_s`` — the frozen grid with tracing compiled in but
      disabled (every hook pays one attribute check); compared against
      the replay section's wall under ``--check``.
    * ``wall_on_s`` + ``events_traced`` — the same grid with a live
      tracer per replay.
    * ``counters_off`` / ``counters_on`` — determinism counters from
      both passes; tracing must leave them byte-for-byte identical.
    """
    from repro.trace import Tracer

    counters_off = Counters()
    start = time.perf_counter()
    run_replay_grid(counters_off)
    walls_off = [time.perf_counter() - start]
    for _ in range(repetitions - 1):
        start = time.perf_counter()
        run_replay_grid(None)
        walls_off.append(time.perf_counter() - start)

    tracers: List[Tracer] = []

    def factory() -> Tracer:
        tracer = Tracer()
        tracers.append(tracer)
        return tracer

    counters_on = Counters()
    start = time.perf_counter()
    run_replay_grid(counters_on, tracer_factory=factory)
    wall_on = time.perf_counter() - start
    events_traced = sum(len(tracer.events()) for tracer in tracers)
    return {
        "wall_off_s": min(walls_off),
        "wall_on_s": wall_on,
        "events_traced": events_traced,
        "counters_off": counters_off.to_json(),
        "counters_on": counters_on.to_json(),
    }


# ----------------------------------------------------------------------
# grid throughput (engine + executors, fig-3-shaped)
# ----------------------------------------------------------------------
GRID_BENCH_WORKERS = 8


def _engine_grid(engine: ExperimentEngine) -> Grid:
    """The frozen fig-3-shaped grid, declared through the engine so the
    §4.2 push orders are computed by the executor under test too."""
    corpus = generate_corpus(TOP_100_PROFILE, GRID_SITES, seed=GRID_SEED)
    orders = engine.orders_for(
        [site.spec for site in corpus], runs=GRID_ORDER_RUNS
    )
    grid = Grid(name="bench-grid")
    for index, (site, order) in enumerate(zip(corpus, orders)):
        grid.add(site.spec, NoPushStrategy(), runs=GRID_RUNS, seed_base=index)
        grid.add(
            site.spec, PushAllStrategy(order=order), runs=GRID_RUNS, seed_base=index
        )
    return grid


def run_grid_benchmark(repetitions: int) -> Dict[str, object]:
    """Time the same grid through each executor; outputs must agree."""

    def timed(executor) -> tuple:
        """Best-of-``repetitions`` over one (possibly persistent) executor."""
        walls, prints = [], None
        try:
            for _ in range(repetitions):
                engine = ExperimentEngine(executor=executor, cache=None, force=True)
                start = time.perf_counter()
                results = engine.run(_engine_grid(engine))
                walls.append(time.perf_counter() - start)
                prints = [fingerprint(result) for result in results]
        finally:
            executor.close()
        return min(walls), prints

    serial_wall, serial_prints = timed(SerialExecutor())
    legacy_wall, legacy_prints = timed(LegacyParallelExecutor(GRID_BENCH_WORKERS))
    # The pool persists across repetitions — exactly how experiment
    # drivers hold it across grids — so reps after the first measure the
    # warm steady state.
    warm_wall, warm_prints = timed(
        WarmPoolExecutor(GRID_BENCH_WORKERS, auto_scale=False)
    )
    # The production default: auto_scale clamps to the host's cores, so
    # on small machines this takes the in-process warm path instead of
    # oversubscribing.
    warm_auto = WarmPoolExecutor(GRID_BENCH_WORKERS)
    effective_workers = warm_auto.effective_workers
    warm_auto_wall, warm_auto_prints = timed(warm_auto)
    # LRU tier: the same grid resubmitted to a warm engine is answered
    # entirely from the in-process memory cache.
    with WarmPoolExecutor(GRID_BENCH_WORKERS, auto_scale=False) as executor:
        engine = ExperimentEngine(executor=executor, cache=None)
        grid = _engine_grid(engine)
        engine.run(grid)
        start = time.perf_counter()
        rerun = engine.run(grid)
        lru_wall = time.perf_counter() - start
        lru_prints = [fingerprint(result) for result in rerun]
    identical = (
        serial_prints
        == legacy_prints
        == warm_prints
        == warm_auto_prints
        == lru_prints
    )
    best_warm = min(warm_wall, warm_auto_wall)
    return {
        "cpus": os.cpu_count() or 1,
        "workers": {
            "requested": GRID_BENCH_WORKERS,
            "forced": GRID_BENCH_WORKERS,
            "auto_scaled": effective_workers,
        },
        "wall_s": {
            "serial": serial_wall,
            "legacy_parallel": legacy_wall,
            "warm_pool": warm_wall,
            "warm_auto": warm_auto_wall,
            "warm_lru_rerun": lru_wall,
        },
        "speedup_warm_vs_legacy": round(legacy_wall / best_warm, 3),
        "speedup_warm_vs_serial": round(serial_wall / best_warm, 3),
        "speedup_lru_vs_legacy": round(legacy_wall / lru_wall, 3),
        "identical_outputs": identical,
    }


# ----------------------------------------------------------------------
# population streaming (constant-memory contract)
# ----------------------------------------------------------------------
POPULATION_BASE_LOADS = 12
POPULATION_SCALE = 10
#: The 10x study may peak at most this multiple of the 1x study's
#: traced peak; with materialized run lists the ratio would be ~10x.
POPULATION_MEMORY_FACTOR = 2.0


def run_population_benchmark() -> Dict[str, object]:
    """Stream a one-cohort study at 1x and 10x loads; peak must not scale.

    Memory is observed with :mod:`tracemalloc` (``reset_peak`` between
    scales), which sees exactly the Python allocations the streaming
    refactor bounds; ``ru_maxrss`` is recorded for context but is
    monotone over the process lifetime, so it cannot express the
    per-scale comparison.  A throwaway warm-up study runs first and
    each measured study starts from a collected heap — otherwise
    import-time caches and GC timing land in the small base peak and
    jitter the ratio by tens of percent.
    """
    import gc
    import resource
    import tracemalloc

    from repro.population import PopulationConfig, run_population
    from repro.population.cohorts import QUICK_PROFILE, Cohort
    from repro.population.profiles import population_sampler

    cohort = Cohort(
        name="bench/wired",
        spec=generate_corpus(QUICK_PROFILE, 1, seed=GRID_SEED)[0].spec,
        sampler=population_sampler("wired"),
        description="perf-harness cohort",
    )

    def study(loads: int) -> Dict[str, object]:
        config = PopulationConfig(
            loads=loads, batch_size=16, seed=GRID_SEED, cohorts=[cohort]
        )
        engine = ExperimentEngine(executor=SerialExecutor(), cache=None)
        gc.collect()
        tracemalloc.start()
        tracemalloc.reset_peak()
        start = time.perf_counter()
        result = run_population(config, engine=engine)
        wall = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        replays = loads * 2  # paired arms
        return {
            "loads": loads,
            "replays": replays,
            "wall_s": wall,
            "loads_per_s": round(replays / wall, 3),
            "tracemalloc_peak_bytes": peak,
            "verdicts": [acc.verdict for acc in result.cohorts],
        }

    study(POPULATION_BASE_LOADS)  # warm-up: imports, freelists, memo caches
    base = study(POPULATION_BASE_LOADS)
    scaled = study(POPULATION_BASE_LOADS * POPULATION_SCALE)
    ratio = (
        scaled["tracemalloc_peak_bytes"] / base["tracemalloc_peak_bytes"]
        if base["tracemalloc_peak_bytes"]
        else 0.0
    )
    return {
        "base": base,
        "scaled": scaled,
        "scale": POPULATION_SCALE,
        "memory_ratio": round(ratio, 3),
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


# ----------------------------------------------------------------------
# closed-loop optimizer
# ----------------------------------------------------------------------
#: Sibling candidates share CRN seeds, so most of their leases must
#: fork a resident prefix instead of capturing a fresh one.
OPTIMIZER_PREFIX_HIT_FLOOR = 0.5


def run_optimizer_benchmark() -> Dict[str, object]:
    """One pinned search cell: halving race + exhaustive reference.

    The halving run records the search-cost accounting (arm-runs
    scheduled vs exhaustive, prefix-cache reuse).  A second run with a
    single full-budget rung and ``eta=1`` — no pruning of any kind —
    is the exhaustive reference: both searches are deterministic, so
    the halving winner must select the exact same policy per cell, or
    pruning changed a decision it claims only to accelerate.
    """
    import dataclasses

    from repro.optimizer import OptimizeConfig, run_optimize

    config = OptimizeConfig(
        sites=("w3",),
        conditions=("clean_dsl", "lossy_dsl"),
        rungs=(2, 3),
        population=4,
        neighbors_per_anchor=1,
        restarts=2,
    )
    start = time.perf_counter()
    result = run_optimize(
        config, engine=ExperimentEngine(executor=SerialExecutor(), cache=None)
    )
    wall = time.perf_counter() - start
    exhaustive_config = dataclasses.replace(
        config, rungs=(config.rungs[-1],), eta=1
    )
    exhaustive = run_optimize(
        exhaustive_config,
        engine=ExperimentEngine(executor=SerialExecutor(), cache=None),
    )
    matches = all(
        result.table.lookup(entry.site, entry.condition) is not None
        and result.table.lookup(entry.site, entry.condition).policy
        == entry.policy
        for entry in exhaustive.table.entries
    )
    return {
        "wall_s": round(wall, 3),
        "evaluations": result.stats["evaluations"],
        "exhaustive_evaluations": result.stats["exhaustive"],
        "evaluations_saved": result.stats["saved"],
        "saved_pct": round(result.stats["saved_pct"], 2),
        "prefix_hits": result.stats["prefix_hits"],
        "prefix_misses": result.stats["prefix_misses"],
        "prefix_hit_rate": round(result.stats["prefix_hit_rate"], 3),
        "table_sha": result.table.sha(),
        "winners": {
            f"{entry.site}/{entry.condition}": entry.source
            for entry in result.table.entries
        },
        "matches_exhaustive_argmin": matches,
    }


# ----------------------------------------------------------------------
# result recording
# ----------------------------------------------------------------------
def build_section(repetitions: int) -> Dict[str, object]:
    # Micros are best-of-repetitions like every timed section: single
    # samples on a shared host are too noisy for the --check bound.
    micros = run_micros()
    for _ in range(repetitions - 1):
        for name, value in run_micros().items():
            if value < micros[name]:
                micros[name] = value
    replay = run_replay_benchmark(repetitions)
    fastcore = run_fastcore_benchmark(repetitions)
    fork = run_fork_benchmark(repetitions)
    trace = run_trace_benchmark(repetitions)
    grid = run_grid_benchmark(repetitions)
    population = run_population_benchmark()
    optimizer = run_optimizer_benchmark()
    return {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "micros": micros,
        "replay": replay,
        "fastcore": fastcore,
        "fork": fork,
        "trace": trace,
        "grid": grid,
        "population": population,
        "optimizer": optimizer,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="record this run as the pre-optimization baseline",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="single timing repetition (CI smoke); counters are unaffected",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless determinism counters match the baseline"
        " (count-based only; wall times never fail the check)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="result JSON path"
    )
    parser.add_argument(
        "--fastcore-probe",
        metavar="MODE",
        default=None,
        help=argparse.SUPPRESS,  # subprocess entry point, not a user flag
    )
    args = parser.parse_args(argv)
    if args.fastcore_probe:
        return _fastcore_probe(args.fastcore_probe)

    repetitions = 1 if args.quick else 3
    section = build_section(repetitions)

    document: Dict[str, object] = {"schema": 1}
    if args.output.exists():
        document = json.loads(args.output.read_text())
    if args.record_baseline:
        document["baseline"] = section
        document.pop("current", None)
        document.pop("speedup", None)
    else:
        document["current"] = section

    baseline = document.get("baseline")
    current = document.get("current")
    counters_match: Optional[bool] = None
    if baseline and current:
        speedup = {
            "replay": round(
                baseline["replay"]["wall_s"] / current["replay"]["wall_s"], 3
            ),
            "micros": {
                name: round(baseline["micros"][name] / current["micros"][name], 3)
                for name in current["micros"]
                if name in baseline["micros"]
            },
        }
        counters_match = (
            baseline["replay"]["counters"] == current["replay"]["counters"]
        )
        speedup["counters_match"] = counters_match
        # The grid section compares executors within one run (the legacy
        # executor *is* the pre-PR baseline), so it needs no baseline
        # section to report a speedup.
        if "grid" in current:
            speedup["grid_warm_vs_legacy"] = current["grid"][
                "speedup_warm_vs_legacy"
            ]
        # The fastcore section compares cores within one run (the
        # oracle *is* the pre-PR engine), mirroring the grid section.
        if "fastcore" in current:
            speedup["fastcore_vs_oracle"] = current["fastcore"][
                "speedup_fast_vs_python"
            ]
        # Likewise the fork section compares straight vs forked within
        # one run (straight execution *is* the pre-PR behavior).
        if "fork" in current:
            speedup["fork_vs_straight"] = current["fork"][
                "speedup_fork_vs_straight"
            ]
        document["speedup"] = speedup
        print(f"replay speedup vs baseline: {speedup['replay']}x")
        print(f"determinism counters match baseline: {counters_match}")
        if not counters_match:
            print("WARNING: determinism counters drifted", file=sys.stderr)

    args.output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    label = "baseline" if args.record_baseline else "current"
    print(f"{label} replay wall: {section['replay']['wall_s']:.3f} s")
    for name, value in section["micros"].items():
        print(f"{label} {name}: {value:.3f} s")
    grid = section["grid"]
    for name, value in grid["wall_s"].items():
        print(f"{label} grid {name}: {value:.3f} s")
    print(
        f"{label} grid warm vs legacy: {grid['speedup_warm_vs_legacy']}x "
        f"(cpus={grid['cpus']}, identical_outputs={grid['identical_outputs']})"
    )
    fastcore = section["fastcore"]
    for name, value in fastcore["wall_s"].items():
        print(f"{label} fastcore {name}: {value:.3f} s")
    print(
        f"{label} fastcore vs oracle: {fastcore['speedup_fast_vs_python']}x "
        f"(identical_counters={fastcore['identical_counters']}, "
        f"compiled_available={fastcore['compiled_available']}, "
        f"rounds={fastcore['rounds']}, interleaved fresh-process A/B)"
    )
    fork = section["fork"]
    fanout = fork["sim_fanout"]
    paired = fork["paired_grid"]
    print(
        f"{label} fork fan-out ({fanout['candidates']} candidates x "
        f"{fanout['warmup_events']} warmup events): "
        f"{fanout['wall_s']['straight']:.3f} / "
        f"{fanout['wall_s']['forked']:.3f} s = "
        f"{fanout['speedup_forked_vs_straight']}x "
        f"(identical_outputs={fanout['identical_outputs']})"
    )
    print(
        f"{label} fork paired grid: {paired['wall_s']['straight']:.3f} / "
        f"{paired['wall_s']['forked']:.3f} s = "
        f"{paired['speedup_forked_vs_straight']}x "
        f"(identical_outputs={paired['identical_outputs']}, "
        f"prefix hits={paired['prefix_cache']['hits']}/"
        f"{paired['prefix_cache']['forks']} forks)"
    )
    trace = section["trace"]
    print(
        f"{label} trace off/on wall: {trace['wall_off_s']:.3f} / "
        f"{trace['wall_on_s']:.3f} s ({trace['events_traced']} events traced)"
    )
    optimizer = section["optimizer"]
    print(
        f"{label} optimizer: {optimizer['evaluations']} arm-runs vs "
        f"{optimizer['exhaustive_evaluations']} exhaustive "
        f"({optimizer['saved_pct']}% saved), prefix hit rate "
        f"{optimizer['prefix_hit_rate']}, "
        f"argmin match={optimizer['matches_exhaustive_argmin']}, "
        f"table_sha={optimizer['table_sha'][:12]}"
    )
    population = section["population"]
    print(
        f"{label} population: {population['scaled']['loads_per_s']} loads/s, "
        f"peak 1x/{population['scale']}x = "
        f"{population['base']['tracemalloc_peak_bytes']:,} / "
        f"{population['scaled']['tracemalloc_peak_bytes']:,} bytes "
        f"(ratio {population['memory_ratio']})"
    )
    print(json.dumps(section["replay"]["counters"], indent=2, sort_keys=True))
    failures = []
    if args.check:
        if counters_match is not True:
            failures.append("determinism counters drifted from baseline")
        if not grid["identical_outputs"]:
            failures.append("executors disagreed on grid outputs")
        replay_counters = section["replay"]["counters"]
        if trace["counters_off"] != replay_counters:
            failures.append("tracing-off pass drifted the determinism counters")
        if trace["counters_on"] != replay_counters:
            failures.append("tracing-on pass drifted the determinism counters")
        if trace["events_traced"] <= 0:
            failures.append("tracing-on pass captured no events")
        bound = TRACE_OFF_NOISE_FACTOR * section["replay"]["wall_s"]
        if trace["wall_off_s"] > bound:
            failures.append(
                f"tracing-off wall {trace['wall_off_s']:.3f}s exceeds the "
                f"noise bound {bound:.3f}s — disabled hooks are too expensive"
            )
        if not fastcore["identical_counters"]:
            failures.append(
                "fastcore and oracle disagreed on the determinism counters"
            )
        if fastcore["counters"]["python"] != replay_counters:
            failures.append(
                "explicit-oracle pass drifted from the replay section counters"
            )
        if not fanout["identical_outputs"]:
            failures.append(
                "forked sim fan-out diverged from the straight re-runs"
            )
        if not paired["identical_outputs"]:
            failures.append(
                "forked paired-grid results are not bit-identical to the "
                "straight runs"
            )
        if paired["prefix_cache"]["hits"] <= 0:
            failures.append(
                "the forked paired grid produced no prefix-cache hits — "
                "CRN candidates are not sharing their prefix"
            )
        if baseline:
            base_hpack = baseline["micros"].get("hpack_round_trip_2k_s")
            cur_hpack = section["micros"]["hpack_round_trip_2k_s"]
            if base_hpack and cur_hpack > base_hpack * HPACK_NOISE_FACTOR:
                failures.append(
                    f"hpack round trip {cur_hpack:.4f}s regressed past the "
                    f"baseline {base_hpack:.4f}s (noise factor "
                    f"{HPACK_NOISE_FACTOR}x)"
                )
        if optimizer["evaluations_saved"] <= 0:
            failures.append(
                "successive halving scheduled no fewer arm-runs than "
                "exhaustive evaluation — pruning is not engaging"
            )
        if optimizer["prefix_hit_rate"] < OPTIMIZER_PREFIX_HIT_FLOOR:
            failures.append(
                f"optimizer prefix-cache hit rate "
                f"{optimizer['prefix_hit_rate']} fell below the "
                f"{OPTIMIZER_PREFIX_HIT_FLOOR} floor — sibling candidates "
                "are not sharing replay prefixes"
            )
        if not optimizer["matches_exhaustive_argmin"]:
            failures.append(
                "the halving winner differs from the full-budget "
                "exhaustive argmin on the pinned search cell"
            )
        if baseline and "optimizer" in baseline:
            if optimizer["table_sha"] != baseline["optimizer"]["table_sha"]:
                failures.append(
                    "optimizer policy-table sha drifted from the recorded "
                    "baseline — the search is no longer bit-reproducible"
                )
        if population["memory_ratio"] > POPULATION_MEMORY_FACTOR:
            failures.append(
                f"population memory peak grew {population['memory_ratio']}x "
                f"over a {population['scale']}x load scale (bound "
                f"{POPULATION_MEMORY_FACTOR}x) — the streaming pipeline is "
                "accumulating per-load state"
            )
    for failure in failures:
        print(f"check FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
