"""Context bench: HTTP/1.1 vs HTTP/2 vs HTTP/2 + Interleaving Push.

The paper motivates H2 with H1's inefficiencies (§1) and builds on the
SPDY/H2-vs-H1 comparisons of Wang et al. and Varvello et al. (§3).
This bench reproduces that context on the synthetic sites: H2's single
multiplexed connection beats H1's six serial connections for pages of
many small objects, and the §5 interleaving strategy adds its gain on
top.
"""

from conftest import write_report

from repro.experiments.report import render_series
from repro.html import build_site
from repro.replay import ReplayTestbed
from repro.sites.synthetic import synthetic_sites
from repro.strategies import NoPushStrategy
from repro.strategies.critical import build_strategy_suite


def test_h1_vs_h2(benchmark):
    def run_matrix():
        rows = []
        for name in ("s2", "s4", "s6", "s8"):
            spec = synthetic_sites()[name]
            built = build_site(spec)
            h1 = ReplayTestbed(built=built, protocol="h1").run()
            h2 = ReplayTestbed(built=built, strategy=NoPushStrategy()).run()
            suite = {d.name: d for d in build_strategy_suite(spec)}
            deployment = suite["push_critical_optimized"]
            pco = ReplayTestbed(
                built=build_site(deployment.spec), strategy=deployment.strategy
            ).run()
            rows.append(
                (
                    name,
                    round(h1.plt_ms),
                    round(h2.plt_ms),
                    round(h1.speed_index_ms),
                    round(h2.speed_index_ms),
                    round(pco.speed_index_ms),
                    h1.connections,
                    h2.connections,
                )
            )
        return rows

    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    write_report(
        "context_h1_vs_h2",
        render_series(
            ("site", "H1 PLT", "H2 PLT", "H1 SI", "H2 SI", "H2+ileave SI",
             "H1 conns", "H2 conns"),
            rows,
            title="HTTP/1.1 vs HTTP/2 vs HTTP/2 + interleaving push",
        ),
    )
    # H2's prioritized multiplexing wins the *visual* metric everywhere
    # (Varvello et al.: benefits for 80% of sites); PLT is mixed because
    # H1's six parallel connections ramp six congestion windows at once.
    h2_si_wins = sum(1 for row in rows if row[4] <= row[3])
    assert h2_si_wins >= 3
    for row in rows:
        assert row[6] > row[7]  # H1 uses more connections than H2
