"""Protocol micro-benchmarks (timed with pytest-benchmark).

These measure the simulator's own throughput — useful when scaling the
corpora up to the paper's full 100 sites x 31 runs.
"""

from repro.h2.frames import DataFrame, FrameReader
from repro.h2.hpack import HpackDecoder, HpackEncoder
from repro.replay import replay_site
from repro.sites.synthetic import s2_landing

HEADERS = [
    (":method", "GET"),
    (":scheme", "https"),
    (":authority", "www.example.com"),
    (":path", "/assets/app-39fa2bb1.js"),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", "en-US,en;q=0.9"),
    ("user-agent", "Mozilla/5.0 (X11; Linux x86_64) repro/1.0"),
    ("cookie", "session=0123456789abcdef; theme=dark"),
]


def test_hpack_encode_throughput(benchmark):
    encoder = HpackEncoder()

    def encode():
        return encoder.encode(HEADERS)

    block = benchmark(encode)
    assert len(block) > 0


def test_hpack_round_trip_throughput(benchmark):
    encoder, decoder = HpackEncoder(), HpackDecoder()

    def round_trip():
        return decoder.decode(encoder.encode(HEADERS))

    headers = benchmark(round_trip)
    assert headers == HEADERS


def test_frame_parse_throughput(benchmark):
    wire = b"".join(
        DataFrame(stream_id=1, data=b"x" * 1400).serialize() for _ in range(100)
    )

    def parse():
        reader = FrameReader()
        return len(reader.feed(wire))

    count = benchmark(parse)
    assert count == 100


def test_full_page_load_throughput(benchmark):
    """One complete replayed page load (site s2) per iteration."""
    spec = s2_landing()

    def load():
        return replay_site(spec)

    result = benchmark(load)
    assert result.plt_ms > 0
