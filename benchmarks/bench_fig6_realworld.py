"""Fig. 6 — six strategy deployments on the Table 1 sites (§5).

Reproduction targets:
* a handful (paper: 5) of the 20 sites improve ≥ 20% under *push
  critical optimized* — led by w1 (wikipedia), w2 (apple), and w16
  (twitter), the paper's discussed winners;
* w1 pushes an order of magnitude fewer bytes under push-critical-
  optimized than under push-all (paper: ~78 KB vs ~1.1 MB);
* the documented non-winners behave by their documented mechanisms:
  w7/w8 (blocking head JS), w9 (no blocking code: plain push-all
  helps, interleaving does not), w10 (image contention: push-all
  detrimental, critical pushes neutral), w17 (third-party complexity:
  everything ~0, but first visual change improves).
"""

from conftest import write_report

from repro.experiments import Fig6Config, run_fig6


def test_fig6_realworld(benchmark):
    config = Fig6Config(runs=5)
    result = benchmark.pedantic(lambda: run_fig6(config), rounds=1, iterations=1)
    write_report("fig6_realworld", result.render())

    sites = {site.site: site for site in result.sites}

    # (a) a handful of winners, including the paper's discussed three.
    assert 3 <= len(result.winners) <= 7
    for expected in ("w1", "w2", "w16"):
        assert expected in result.winners, expected

    # w1: large savings in pushed bytes vs push-all.
    w1 = sites["w1"].outcomes
    assert w1["push_critical_optimized"].pushed_bytes < 0.2 * w1["push_all"].pushed_bytes
    assert w1["push_critical_optimized"].mean_delta_si_pct < -30

    # (b) the documented non-winners.
    for loser in ("w9", "w10", "w17"):
        assert loser not in result.winners, loser
    # w9: pushing all helps, interleaving critical pushes does not.
    w9 = sites["w9"].outcomes
    assert w9["push_all"].mean_delta_si_pct < 0
    assert w9["push_critical_optimized"].mean_delta_si_pct > -10
    # w10: push-all based strategies are detrimental; critical-only is
    # at worst neutral (the paper: "reduces detrimental effects").
    w10 = sites["w10"].outcomes
    assert w10["push_all_optimized"].mean_delta_si_pct > 5
    assert w10["push_critical"].mean_delta_si_pct < w10["push_all_optimized"].mean_delta_si_pct
    # w17: too complex for push to matter; SI change stays small...
    w17 = sites["w17"].outcomes
    assert abs(w17["push_critical_optimized"].mean_delta_si_pct) < 10
    # ...but the first visual change *does* improve (paper, §5).
    assert (
        w17["push_critical_optimized"].first_visual_change_ms
        < w17["no_push"].first_visual_change_ms
    )
