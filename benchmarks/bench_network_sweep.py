"""Context bench: push effectiveness vs network characteristics.

Rosen et al. / Wang et al. (§3 of the paper): push saves round trips,
so gains grow with RTT; bandwidth mainly scales the absolute numbers.
"""

from conftest import write_report

from repro.experiments import SweepConfig, run_network_sweep


def test_network_sweep(benchmark):
    config = SweepConfig(rtts_ms=(25, 50, 100, 200), bandwidths_mbit=(4, 16, 64), runs=3)
    result = benchmark.pedantic(lambda: run_network_sweep(config), rounds=1, iterations=1)
    write_report("context_network_sweep", result.render())

    for bandwidth in (4, 16, 64):
        gains = result.gains_by_rtt(bandwidth)
        # The absolute interleaving gain grows with RTT (round trips saved).
        assert gains[-1] > gains[0], f"bandwidth {bandwidth}: {gains}"
        # Push never loses on this CSS-gated page.
        assert min(gains) > 0
