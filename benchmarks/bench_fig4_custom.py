"""Fig. 4 — custom strategies on synthetic sites s1–s10 (§4.3).

Reproduction targets:
* the custom (above-the-fold) strategy performs on par with push-all
  while pushing a fraction of the bytes (s1: ~300 KB vs ~1 MB);
* s5 (computation-bound) and s8 (early references) show no meaningful
  benefit from push;
* no dramatic detriments on the single-server deployments.
"""

from conftest import write_report

from repro.experiments import Fig4Config, run_fig4


def test_fig4_custom_strategies(benchmark):
    config = Fig4Config(runs=7)
    result = benchmark.pedantic(lambda: run_fig4(config), rounds=1, iterations=1)
    write_report("fig4_custom", result.render())

    for site in (f"s{i}" for i in range(1, 11)):
        outcomes = result.for_site(site)
        push_all = outcomes["push_all"]
        custom = outcomes["custom"]
        # Custom pushes no more bytes than push-all, usually far fewer.
        assert custom.pushed_bytes <= push_all.pushed_bytes
        # Custom performs comparably to push-all (within ~25 points).
        assert abs(custom.mean_delta_si_pct - push_all.mean_delta_si_pct) < 25.0

    # s1 pushes less than half of push-all's bytes with similar effect.
    s1 = result.for_site("s1")
    assert s1["custom"].pushed_bytes < 0.55 * s1["push_all"].pushed_bytes

    # s5 (CPU-bound) and s8 (early refs): push gives no real benefit.
    for site in ("s5", "s8"):
        outcomes = result.for_site(site)
        assert outcomes["push_all"].mean_delta_si_pct > -10.0
        assert outcomes["custom"].mean_delta_si_pct > -10.0
