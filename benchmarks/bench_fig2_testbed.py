"""Fig. 2 — testbed evaluation (§4.1).

(a) per-site standard error of PLT / SpeedIndex, testbed vs Internet;
(b) Δ of as-deployed push vs no push in the testbed.

Reproduction targets: the testbed removes nearly all variability (σ an
order of magnitude below the Internet; the paper reports 95% of testbed
sites under 100 ms vs 14% in the Internet), while the push-vs-no-push
deltas still straddle zero — push helps some sites and hurts others.
"""

from conftest import write_report

from repro.experiments import Fig2Config, run_fig2
from repro.metrics import median


def test_fig2_testbed_vs_internet(benchmark):
    config = Fig2Config(sites=15, runs=7)
    result = benchmark.pedantic(lambda: run_fig2(config), rounds=1, iterations=1)
    write_report("fig2_testbed", result.render())

    # (a) variability: testbed sigma << Internet sigma.
    assert result.sigma_fraction(result.plt_sigma_testbed, 100.0) >= 0.9
    assert result.sigma_fraction(result.plt_sigma_internet, 100.0) <= 0.3
    assert median(result.plt_sigma_internet) > 10 * median(
        [max(v, 0.01) for v in result.plt_sigma_testbed]
    )
    assert result.sigma_fraction(result.si_sigma_testbed, 50.0) >= 0.9

    # (b) deltas straddle zero: a sizeable share of sites sees no
    # benefit (paper: 49% PLT / 35% SpeedIndex) — neither 0% nor 100%.
    assert 0.15 <= result.no_benefit_plt <= 0.85
    assert 0.15 <= result.no_benefit_si <= 0.9
    assert min(result.delta_si) < 0 < max(result.delta_si)
