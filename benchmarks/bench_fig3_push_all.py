"""Fig. 3a — push all objects (computed order) vs no push (§4.2.1).

Reproduction targets: only ~45–60% of sites improve in SpeedIndex
(paper: 58% top / 45% random) — push-all is *not* a safe default; the
delta distribution has both tails.
"""

from conftest import write_report

from repro.experiments import Fig3Config, run_fig3a


def test_fig3a_push_all(benchmark):
    config = Fig3Config(sites=12, runs=5, order_runs=3)
    result = benchmark.pedantic(lambda: run_fig3a(config), rounds=1, iterations=1)
    write_report("fig3a_push_all", result.render())

    # Not everyone wins, not everyone loses.
    assert 0.2 <= result.benefit_share_top <= 0.85
    assert 0.2 <= result.benefit_share_random <= 0.85
    # Both improvements and detriments exist across the corpus.
    deltas = result.delta_si_top + result.delta_si_random
    assert min(deltas) < 0
    assert max(deltas) > 0
