"""Fig. 1 — adoption of HTTP/2 and Server Push over 2017 (Alexa 1M).

Reproduction targets: H2 ≈ 120K → 240K sites (≈2x growth), Server Push
≈ 400 → 800 sites, staying orders of magnitude below H2.
"""

from conftest import write_report

from repro.experiments import Fig1Config, run_fig1


def test_fig1_adoption(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig1(Fig1Config()), rounds=1, iterations=1
    )
    write_report("fig1_adoption", result.render())

    assert 100_000 <= result.scans[0].h2_sites <= 140_000
    assert 210_000 <= result.scans[-1].h2_sites <= 270_000
    assert 300 <= result.scans[0].push_sites <= 500
    assert 700 <= result.scans[-1].push_sites <= 900
    # Push stays orders of magnitude below H2 throughout.
    assert result.push_to_h2_ratio < 0.005
    assert 1.8 <= result.h2_growth_factor <= 2.2
