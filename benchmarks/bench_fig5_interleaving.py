"""Fig. 5b — the Interleaving Push motivating example (§5).

A page with one CSS in <head> and a growing <body>.  Reproduction
targets: no push ≈ push (the pushed CSS is a child of the HTML stream
and waits for it), both degrade as the document grows; interleaving is
fast and nearly flat.
"""

from conftest import write_report

from repro.experiments import Fig5Config, run_fig5


def test_fig5_interleaving(benchmark):
    config = Fig5Config(html_sizes_kb=(10, 20, 30, 40, 50, 60, 70, 80, 90), runs=5)
    result = benchmark.pedantic(lambda: run_fig5(config), rounds=1, iterations=1)
    write_report("fig5_interleaving", result.render())

    first, last = result.rows[0], result.rows[-1]
    # no push and push degrade with document size...
    assert last.no_push_si > first.no_push_si + 40
    # ...and track each other closely (the push waits for the HTML).
    for row in result.rows:
        assert abs(row.push_si - row.no_push_si) < 0.15 * row.no_push_si
    # Interleaving stays nearly constant over the upper sweep...
    upper = [row.interleaving_si for row in result.rows if row.html_kb >= 30]
    assert max(upper) - min(upper) < 25
    # ...and clearly beats both alternatives on large documents.
    assert last.interleaving_si < last.no_push_si - 50
    assert result.interleaving_spread < result.no_push_spread
