"""Ablation benches for the design choices DESIGN.md §6 calls out.

* interleaving offset sweep — where to pause the HTML matters;
* push-order ablation — computed vs document vs reversed order;
* connection-coalescing ablation — coalescing raises the pushable share
  and removes handshakes;
* cache ablation — pushing cached objects wastes bytes (§2.1).
"""

from conftest import write_report

from repro.browser.cache import BrowserCache
from repro.experiments import compute_order_for, run_repeated
from repro.experiments.report import render_series
from repro.html import ResourceSpec, ResourceType, WebsiteSpec, build_site
from repro.replay import ReplayTestbed
from repro.sites.realworld import w1_wikipedia
from repro.sites.synthetic import s1_loading_screen
from repro.strategies import NoPushStrategy, PushAllStrategy, PushListStrategy
from repro.strategies.critical import build_strategy_suite, critical_urls


def test_ablation_interleave_offset(benchmark):
    """Sweep the HTML pause offset for w1's critical pushes."""
    spec = w1_wikipedia()

    def sweep():
        rows = []
        suite = {d.name: d for d in build_strategy_suite(spec)}
        baseline = run_repeated(
            suite["no_push"].spec, suite["no_push"].strategy, runs=3
        ).median_si
        for offset in (1_000, 4_000, 16_000, 64_000, 200_000):
            deployments = {
                d.name: d for d in build_strategy_suite(spec, interleave_offset=offset)
            }
            deployment = deployments["push_critical_optimized"]
            cell = run_repeated(deployment.spec, deployment.strategy, runs=3)
            rows.append((offset, round(cell.median_si), round(baseline)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(
        "ablation_interleave_offset",
        render_series(("offset B", "SI ms", "no-push SI ms"), rows,
                      title="Interleave-offset sweep (w1)"),
    )
    by_offset = {offset: si for offset, si, _base in rows}
    # Pausing early (a few KB in) beats pausing near the end of the HTML.
    assert by_offset[4_000] < by_offset[200_000]


def test_ablation_push_order(benchmark):
    """§4.2.1: varying the push order changes the outcome."""
    spec = s1_loading_screen()
    built = build_site(spec)

    def run_orders():
        computed = compute_order_for(spec, runs=3, built=built)
        orders = {
            "computed": computed,
            "reversed": list(reversed(computed)),
        }
        rows = []
        for name, order in orders.items():
            cell = run_repeated(spec, PushAllStrategy(order=order), runs=3, built=built)
            rows.append((name, round(cell.median_si)))
        baseline = run_repeated(spec, NoPushStrategy(), runs=3, built=built)
        rows.append(("no_push", round(baseline.median_si)))
        return rows

    rows = benchmark.pedantic(run_orders, rounds=1, iterations=1)
    write_report(
        "ablation_push_order",
        render_series(("order", "median SI ms"), rows, title="Push-order ablation (s1)"),
    )
    by_name = dict(rows)
    # A reversed order (images before render-critical CSS/JS) must not
    # beat the computed request order.
    assert by_name["computed"] <= by_name["reversed"] + 5


def _coalescing_spec(coalesced: bool) -> WebsiteSpec:
    domains = {"img.shop-static.example"} if coalesced else set()
    ips = {} if coalesced else {"img.shop-static.example": "10.0.0.44"}
    return WebsiteSpec(
        name=f"coal-{coalesced}",
        primary_domain="shop.example",
        html_size=40_000,
        html_visual_weight=25,
        resources=[
            ResourceSpec("shop.css", ResourceType.CSS, 20_000, in_head=True),
            ResourceSpec("hero.jpg", ResourceType.IMAGE, 80_000,
                         domain="img.shop-static.example",
                         body_fraction=0.1, visual_weight=20),
        ],
        coalesced_domains=domains,
        domain_ips=ips,
    )


def test_ablation_connection_coalescing(benchmark):
    """Coalescing makes the CDN-hosted hero pushable and saves a handshake."""

    def run_both():
        results = {}
        for coalesced in (True, False):
            spec = _coalescing_spec(coalesced)
            testbed = ReplayTestbed(built=build_site(spec), strategy=PushAllStrategy())
            result = testbed.run()
            results[coalesced] = result
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    write_report(
        "ablation_coalescing",
        render_series(
            ("coalesced", "connections", "pushed KB", "SI ms"),
            [
                (str(flag), r.connections, round(r.pushed_bytes / 1000, 1),
                 round(r.speed_index_ms))
                for flag, r in results.items()
            ],
            title="Connection-coalescing ablation",
        ),
    )
    assert results[True].connections == 1
    assert results[False].connections == 2
    # Only the coalesced deployment can push the CDN-hosted hero.
    assert results[True].pushed_bytes > results[False].pushed_bytes


def test_ablation_push_to_warm_cache(benchmark):
    """§2.1: pushes of cached objects are cancelled, but late."""
    spec = WebsiteSpec(
        name="warm",
        primary_domain="warm.example",
        html_size=60_000,
        html_visual_weight=30,
        resources=[ResourceSpec("app.css", ResourceType.CSS, 40_000, in_head=True)],
    )
    built = build_site(spec)

    def run_warm():
        cache = BrowserCache()
        testbed = ReplayTestbed(built=built, strategy=PushAllStrategy())
        cold = testbed.run(cache=cache)
        warm = testbed.run(cache=cache)
        return cold, warm

    cold, warm = benchmark.pedantic(run_warm, rounds=1, iterations=1)
    write_report(
        "ablation_warm_cache",
        render_series(
            ("view", "pushes", "cancelled", "pushed KB", "PLT ms"),
            [
                ("cold", cold.timeline.pushes_received, cold.timeline.pushes_cancelled,
                 round(cold.pushed_bytes / 1000, 1), round(cold.plt_ms)),
                ("warm", warm.timeline.pushes_received, warm.timeline.pushes_cancelled,
                 round(warm.pushed_bytes / 1000, 1), round(warm.plt_ms)),
            ],
            title="Warm-cache push ablation",
        ),
    )
    assert cold.timeline.pushes_adopted == 1
    # On the repeat view the push is for a cached object: cancelled.
    assert warm.timeline.pushes_cancelled == 1
