"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's tables or figures,
asserts the reproduction target (the *shape* of the result — who wins,
roughly by how much), and writes the rendered rows/series to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference them.
"""

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def write_report(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path
