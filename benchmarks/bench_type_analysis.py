"""§4.2 text statistics — pushable objects and object-type strategies.

Reproduction targets:
* pushable share: ~52% of top-100 (24% of random-100) sites have fewer
  than 20% pushable objects;
* pushing images worsens SpeedIndex for a large majority of sites
  (paper: 74%);
* even the best per-site type strategy improves only a minority
  (paper: 24% SpeedIndex / 20% PLT).
"""

from conftest import write_report

from repro.experiments import (
    TypeAnalysisConfig,
    run_pushable_share,
    run_type_analysis,
)


def test_pushable_share_table(benchmark):
    result = benchmark.pedantic(
        lambda: run_pushable_share(sites=100), rounds=1, iterations=1
    )
    write_report("table_pushable_share", result.render())
    assert 0.35 <= result.top_below_20 <= 0.70      # paper: 52%
    assert 0.10 <= result.random_below_20 <= 0.40   # paper: 24%
    assert result.top_below_20 > result.random_below_20


def test_type_analysis(benchmark):
    config = TypeAnalysisConfig(sites=10, runs=3)
    result = benchmark.pedantic(lambda: run_type_analysis(config), rounds=1, iterations=1)
    write_report("table_type_analysis", result.render())

    # Images: mostly harmful (paper: 74% of sites worse).
    assert result.images_worse_share >= 0.5
    # The best type strategy helps only a minority of sites.
    assert result.best_type_improves_si <= 0.6
