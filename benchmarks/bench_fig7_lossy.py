"""Fig. 7 bench: push strategies under packet loss (extension).

Goel et al. and Elkhatib et al. (§3 of the paper): loss and delay
variability change which HTTP configuration wins.  The sweep replays
the Fig. 5 page over an impaired DSL link, crossing loss rate with the
congestion controller.
"""

from conftest import write_report

from repro.experiments import Fig7Config, run_fig7


def test_fig7_lossy(benchmark):
    config = Fig7Config(loss_rates=(0.0, 0.01, 0.02, 0.05), runs=3)
    result = benchmark.pedantic(lambda: run_fig7(config), rounds=1, iterations=1)
    write_report("fig7_lossy", result.render())

    for cc in config.congestion_controls:
        for strategy in result.strategies():
            plts = [plt for _, plt in result.curve(cc, strategy)]
            # Loss hurts: every curve degrades from clean to 5% loss.
            assert plts[-1] > plts[0], f"{cc}/{strategy}: {plts}"
    # The clean column is controller-invariant (no loss events, so the
    # controllers never act); the lossy tail is not.
    reno_tail = result.curve("reno", "no_push")[-1]
    cubic_tail = result.curve("cubic", "no_push")[-1]
    assert reno_tail != cubic_tail
