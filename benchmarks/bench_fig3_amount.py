"""Fig. 3b — push a limited amount n ∈ {1, 5, 10, 15, all} (§4.2.1).

Reproduction target: pushing less causes fewer / smaller detriments
than pushing everything, but rarely produces large improvements.
"""

from conftest import write_report

from repro.experiments import Fig3Config, run_fig3b
from repro.metrics import mean, percentile


def test_fig3b_push_amount(benchmark):
    config = Fig3Config(sites=12, runs=5, order_runs=3, amounts=(1, 5, 10, 15))
    result = benchmark.pedantic(lambda: run_fig3b(config), rounds=1, iterations=1)
    write_report("fig3b_amount", result.render())

    # The worst-case (p95) detriment of push_1 is no worse than
    # push_all's: limiting the amount bounds the damage.
    worst_one = percentile(result.delta_si["push_1"], 95)
    worst_all = percentile(result.delta_si["push_all"], 95)
    assert worst_one <= worst_all + 30.0
    # Median effects of small-n pushes hover near zero.
    assert abs(percentile(result.delta_si["push_1"], 50)) < 60.0
    # All five strategy columns were measured on every site.
    for name in ("push_1", "push_5", "push_10", "push_15", "push_all"):
        assert len(result.delta_si[name]) == 12
