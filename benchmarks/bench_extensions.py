"""Benches for the paper-adjacent extensions.

* **Cache digests** (draft-ietf-httpbis-cache-digest, the paper's §2.1
  citation [29]) — eliminate wasted pushes on repeat views;
* **Preload hints** (MetaPush [20] / Vroom [32]) — server-aided
  discovery beats push when the critical content is third-party;
* **CDN A/B selection** (§6) — deploy interleaving where it survives
  RUM noise, keep the original elsewhere.
"""

from conftest import write_report

from repro.browser.cache import BrowserCache
from repro.browser.engine import BrowserConfig
from repro.experiments.ab_testing import ABTestConfig, StrategySelector
from repro.experiments.report import render_series
from repro.html import ResourceSpec, ResourceType, WebsiteSpec, build_site
from repro.replay import ReplayTestbed
from repro.sites.realworld import w1_wikipedia, w17_cnn
from repro.strategies import NoPushStrategy, PushAllStrategy
from repro.strategies.hints import HintAndPushStrategy, PreloadHintStrategy


def test_cache_digest_eliminates_wasted_pushes(benchmark):
    spec = WebsiteSpec(
        name="digest-bench",
        primary_domain="db.example",
        html_size=40_000,
        html_visual_weight=30,
        resources=[
            ResourceSpec("a.css", ResourceType.CSS, 25_000, in_head=True),
            ResourceSpec("b.js", ResourceType.JS, 35_000, in_head=True, exec_ms=10),
        ],
    )
    built = build_site(spec)

    def run_matrix():
        rows = []
        for send_digest in (False, True):
            config = BrowserConfig(send_cache_digest=send_digest)
            testbed = ReplayTestbed(
                built=built, strategy=PushAllStrategy(), browser_config=config
            )
            cache = BrowserCache()
            testbed.run(cache=cache)
            warm = testbed.run(cache=cache)
            rows.append(
                (
                    "digest" if send_digest else "no digest",
                    warm.timeline.pushes_received,
                    warm.timeline.pushes_cancelled,
                    warm.downlink_bytes,
                )
            )
        return rows

    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    write_report(
        "ext_cache_digest",
        render_series(
            ("client", "pushes", "cancelled", "downlink B"),
            rows,
            title="Repeat view with and without cache digests",
        ),
    )
    without, with_digest = rows
    assert without[1] == 2 and without[2] == 2   # pushed then cancelled
    assert with_digest[1] == 0                   # never pushed
    assert with_digest[3] < without[3]           # fewer bytes on the wire


def test_preload_hints_vs_push_for_third_party(benchmark):
    spec = WebsiteSpec(
        name="hints-bench",
        primary_domain="origin.example",
        html_size=100_000,
        html_visual_weight=20,
        atf_text_fraction=0.25,
        resources=[
            ResourceSpec("main.css", ResourceType.CSS, 18_000, in_head=True, exec_ms=4),
            ResourceSpec("hero.jpg", ResourceType.IMAGE, 150_000,
                         domain="cdn.partner.example",
                         body_fraction=0.7, visual_weight=30),
        ],
        domain_ips={"cdn.partner.example": "10.0.0.88"},
    )
    built = build_site(spec)

    def run_matrix():
        rows = []
        for strategy in (NoPushStrategy(), PushAllStrategy(),
                         PreloadHintStrategy(), HintAndPushStrategy()):
            result = ReplayTestbed(built=built, strategy=strategy).run()
            rows.append(
                (strategy.name, round(result.speed_index_ms),
                 round(result.pushed_bytes / 1000, 1))
            )
        return rows

    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    write_report(
        "ext_preload_hints",
        render_series(("strategy", "SI ms", "pushed KB"), rows,
                      title="Third-party hero: hints vs push"),
    )
    by_name = {name: si for name, si, _kb in rows}
    # Push cannot touch the third-party hero; hints can.
    assert by_name["preload_hints"] < by_name["no_push"] - 20
    assert by_name["preload_hints"] < by_name["push_all"] - 20
    assert by_name["hint_and_push"] <= by_name["preload_hints"] + 20


def test_cdn_ab_selection(benchmark):
    def run_selection():
        config = ABTestConfig(lab_runs=3, rum_runs=7)
        return {
            "w1": StrategySelector(w1_wikipedia(), config).run(),
            "w17": StrategySelector(w17_cnn(), config).run(),
        }

    results = benchmark.pedantic(run_selection, rounds=1, iterations=1)
    write_report(
        "ext_ab_selection",
        results["w1"].render() + "\n\n" + results["w17"].render(),
    )
    # w1's interleaving win survives RUM noise.
    assert results["w1"].deployed
    assert results["w1"].chosen.endswith("optimized")
    # w17 must never receive a *push* deployment; its lab winner is the
    # critical-CSS-only variant (the paper's own −14.9% for this site).
    if results["w17"].deployed:
        assert not results["w17"].chosen.startswith("push_")
