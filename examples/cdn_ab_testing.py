#!/usr/bin/env python3
"""The paper's §6 vision: a CDN selecting push strategies per site.

For each site the selector (1) ranks the six §5 deployments in the
deterministic lab testbed, then (2) validates the lab winner against
the original deployment in a RUM-style A/B test under noisy client
network conditions, deploying only when the improvement survives the
noise with confidence.

Expected outcome (mirroring the paper): w1 (wikipedia) gets an
interleaving deployment; w17 (cnn) keeps its original configuration —
its load process is too complex for push to pay off.

Run:  python examples/cdn_ab_testing.py
"""

from repro.experiments.ab_testing import ABTestConfig, StrategySelector
from repro.sites.realworld import w1_wikipedia, w16_twitter, w17_cnn


def main() -> None:
    config = ABTestConfig(lab_runs=3, rum_runs=7)
    for spec_factory in (w1_wikipedia, w16_twitter, w17_cnn):
        spec = spec_factory()
        result = StrategySelector(spec, config).run()
        print(result.render())
        print()


if __name__ == "__main__":
    main()
