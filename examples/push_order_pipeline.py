#!/usr/bin/env python3
"""The §4.2 push-order pipeline on a synthetic shop site.

1. Load the site repeatedly *without* push, tracing every request and
   its HTTP/2 priority.
2. Build a dependency tree per run (fonts hang off their stylesheet,
   script-injected images off their script).
3. Traverse each tree by priority and majority-vote the orders.
4. Push the first n objects of the computed order and compare.

Run:  python examples/push_order_pipeline.py
"""

from repro.experiments import run_repeated
from repro.html import build_site
from repro.sites.synthetic import s4_shop
from repro.strategies import NoPushStrategy, PushFirstNStrategy
from repro.strategies.order import DependencyTree, computed_push_order

RUNS = 5


def main() -> None:
    spec = s4_shop()
    built = build_site(spec)

    # Step 1: traced no-push loads.
    baseline = run_repeated(spec, NoPushStrategy(), runs=RUNS, built=built)
    timelines = [result.timeline for result in baseline.results]

    # Step 2-3: dependency tree + majority vote.
    tree = DependencyTree.from_timeline(timelines[0], built.html_url)
    print(f"dependency tree of {spec.name}: {len(tree)} resources")
    order = computed_push_order(timelines, built.html_url)
    print("computed push order (first 8):")
    for url in order[:8]:
        print("   ", url)

    # Step 4: push the first n objects of that order.
    print(f"\n{'strategy':<10} {'PLT':>8} {'SpeedIndex':>11}")
    print(f"{'no_push':<10} {baseline.median_plt:7.0f}ms {baseline.median_si:10.0f}ms")
    for n in (1, 5, 10):
        cell = run_repeated(
            spec, PushFirstNStrategy(n, order=order), runs=RUNS, built=built
        )
        print(f"{cell.strategy:<10} {cell.median_plt:7.0f}ms {cell.median_si:10.0f}ms")


if __name__ == "__main__":
    main()
