#!/usr/bin/env python3
"""Reproduce the paper's Fig. 5b motivating example at the console.

A test page references one stylesheet in <head>; the <body> grows from
10 KB to 90 KB (everything added sits below the fold).  Three delivery
strategies are compared:

* no push       — the browser requests the CSS; Chromium's priorities
                  make it a dependent of the HTML stream, so the server
                  sends the *entire* HTML first;
* push          — the CSS is pushed, but h2o's default scheduler treats
                  the pushed stream as a child of the HTML: same story;
* interleaving  — the modified scheduler stops the HTML right after
                  </head>, pushes the CSS, then resumes.

Expected shape (the paper's Fig. 5b): the first two curves grow with
document size and track each other; interleaving is flat and fastest.

Run:  python examples/interleaving_sweep.py
"""

from repro.experiments import Fig5Config, run_fig5


def main() -> None:
    config = Fig5Config(html_sizes_kb=(10, 20, 30, 40, 50, 60, 70, 80, 90), runs=5)
    result = run_fig5(config)
    print(result.render())
    print(
        f"\nspread over the sweep: no push {result.no_push_spread:.0f} ms, "
        f"interleaving {result.interleaving_spread:.0f} ms"
    )


if __name__ == "__main__":
    main()
