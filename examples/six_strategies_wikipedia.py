#!/usr/bin/env python3
"""The paper's §5 evaluation on the w1 (wikipedia) site model.

Measures all six strategy deployments — no push, no push optimized
(critical CSS extracted penthouse-style), push all, push all optimized,
push critical, push critical optimized — each over several runs, and
prints the Fig. 6-style relative SpeedIndex changes with confidence
intervals and pushed-byte totals.

w1 is the paper's flagship example: a 236 KB HTML whose CSS the browser
prioritizes *below* the document, so the unmodified server sends the
entire HTML before the stylesheet.  Interleaving the critical CSS after
a few KB of HTML repairs exactly that.

Run:  python examples/six_strategies_wikipedia.py
"""

from repro.experiments import run_repeated
from repro.html import build_site
from repro.metrics import confidence_interval, relative_change
from repro.sites.realworld import w1_wikipedia
from repro.strategies.critical import build_strategy_suite

RUNS = 5


def main() -> None:
    spec = w1_wikipedia()
    suite = build_strategy_suite(spec)
    print(f"site: {spec.name} — HTML {spec.html_size / 1000:.0f} KB, "
          f"{len(spec.resources)} objects\n")

    baseline = None
    print(f"{'deployment':<26} {'ΔSpeedIndex':>14} {'pushed':>10}")
    for deployment in suite:
        built = build_site(deployment.spec)
        cell = run_repeated(
            deployment.spec, deployment.strategy, runs=RUNS, built=built
        )
        if deployment.name == "no_push":
            baseline = cell
            print(f"{deployment.name:<26} {'(baseline)':>14} {0.0:>8.1f}KB"
                  f"   SI = {cell.median_si:.0f} ms")
            continue
        deltas = [
            relative_change(value, base)
            for value, base in zip(cell.si_values, baseline.si_values)
        ]
        center, half = confidence_interval(deltas, level=0.995)
        print(
            f"{deployment.name:<26} {center:+8.2f}%±{half:4.2f} "
            f"{cell.pushed_bytes / 1000:>8.1f}KB"
        )


if __name__ == "__main__":
    main()
