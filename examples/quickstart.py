#!/usr/bin/env python3
"""Quickstart: replay one website under three Server Push strategies.

Builds a small website, records it into the replay testbed (Mahimahi +
h2o equivalent, §4.1 of the paper), and loads it with the browser model
over the emulated DSL link (50 ms RTT, 16/1 Mbit/s) under:

  1. no push        — client sends SETTINGS_ENABLE_PUSH=0;
  2. push all       — server pushes every object it is authoritative for;
  3. interleaving   — the paper's §5 scheduler: the HTML pauses after
                      </head>, the critical CSS is pushed, HTML resumes.

Run:  python examples/quickstart.py
"""

from repro import (
    NoPushStrategy,
    PushAllStrategy,
    PushListStrategy,
    ResourceSpec,
    ResourceType,
    WebsiteSpec,
    build_site,
)
from repro.replay import ReplayTestbed


def make_site() -> WebsiteSpec:
    """A page whose CSS is referenced in <head> of a sizeable HTML."""
    return WebsiteSpec(
        name="quickstart",
        primary_domain="shop.example",
        html_size=90_000,
        html_visual_weight=40,
        atf_text_fraction=0.25,  # only the top of the page is in view
        resources=[
            ResourceSpec("main.css", ResourceType.CSS, 18_000, in_head=True, exec_ms=4),
            ResourceSpec("app.js", ResourceType.JS, 45_000, in_head=True, exec_ms=25),
            ResourceSpec("hero.jpg", ResourceType.IMAGE, 120_000,
                         body_fraction=0.05, visual_weight=25),
            ResourceSpec("brand.woff2", ResourceType.FONT, 22_000,
                         loaded_by="main.css", visual_weight=8),
            ResourceSpec("footer.jpg", ResourceType.IMAGE, 90_000,
                         body_fraction=0.9, above_fold=False),
        ],
    )


def main() -> None:
    spec = make_site()
    built = build_site(spec)
    css_url = spec.url_of("main.css")
    critical = [css_url, spec.url_of("app.js"), spec.url_of("brand.woff2")]

    strategies = [
        NoPushStrategy(),
        PushAllStrategy(),
        PushListStrategy(
            critical,
            critical_urls=critical,
            interleave_offset=built.head_end_offset,
            name="interleaving",
        ),
    ]

    print(f"site: {spec.name} — {len(spec.resources)} objects, "
          f"{spec.total_bytes() / 1000:.0f} KB total\n")
    print(f"{'strategy':<14} {'PLT':>8} {'SpeedIndex':>11} {'first paint':>12} {'pushed':>9}")
    for strategy in strategies:
        result = ReplayTestbed(built=built, strategy=strategy).run()
        print(
            f"{strategy.name:<14} {result.plt_ms:7.0f}ms {result.speed_index_ms:10.0f}ms "
            f"{result.first_paint_ms:11.0f}ms {result.pushed_bytes / 1000:7.1f}KB"
        )


if __name__ == "__main__":
    main()
