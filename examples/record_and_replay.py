#!/usr/bin/env python3
"""Record a website to disk and replay it — the Mahimahi workflow.

The paper's testbed records live request/response pairs with mitmproxy
and converts them to Mahimahi's record format (§4.1).  This example
shows the equivalent offline pipeline:

1. build a website model into real HTTP bodies,
2. record them into a record database and save it to disk
   (one JSON file per exchange),
3. reload the database in a fresh process-like step and inspect it,
4. replay the page from the loaded records.

Run:  python examples/record_and_replay.py
"""

import tempfile
from pathlib import Path

from repro.html import ResourceSpec, ResourceType, WebsiteSpec, build_site
from repro.html.resources import ResourceType as RT
from repro.replay import RecordDatabase, ReplayTestbed, record_site
from repro.strategies import PushAllStrategy


def make_site() -> WebsiteSpec:
    return WebsiteSpec(
        name="blog",
        primary_domain="blog.example",
        html_size=45_000,
        html_visual_weight=35,
        resources=[
            ResourceSpec("theme.css", ResourceType.CSS, 20_000, in_head=True, exec_ms=4),
            ResourceSpec("serif.woff2", ResourceType.FONT, 30_000,
                         loaded_by="theme.css", visual_weight=12),
            ResourceSpec("header.jpg", ResourceType.IMAGE, 60_000,
                         body_fraction=0.1, visual_weight=15),
            ResourceSpec("widget.js", ResourceType.JS, 25_000,
                         body_fraction=0.8, async_script=True, exec_ms=10),
        ],
    )


def main() -> None:
    spec = make_site()
    built = build_site(spec)

    with tempfile.TemporaryDirectory() as tmp:
        record_dir = Path(tmp) / "recorded-blog"

        # --- record ---
        db = record_site(built)
        count = db.save(record_dir)
        print(f"recorded {count} exchanges into {record_dir.name}/")

        # --- reload & inspect ---
        loaded = RecordDatabase.load(record_dir)
        print("\nrecord inventory:")
        for record in sorted(loaded, key=lambda r: r.url):
            print(f"  {record.url:<42} {record.rtype.value:<6} {record.size:>7} B")
        css_count = len(loaded.by_type(RT.CSS))
        print(f"\nstylesheets in the capture: {css_count}")

        # --- replay from the loaded database ---
        testbed = ReplayTestbed(built=built, strategy=PushAllStrategy())
        testbed.db = loaded  # serve from the reloaded records
        result = testbed.run()
        print(
            f"\nreplayed with push all: PLT {result.plt_ms:.0f} ms, "
            f"SpeedIndex {result.speed_index_ms:.0f} ms, "
            f"pushed {result.pushed_bytes / 1000:.1f} KB over "
            f"{result.connections} connection(s)"
        )


if __name__ == "__main__":
    main()
